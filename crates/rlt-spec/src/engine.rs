//! High-throughput linearizability engine.
//!
//! This module is the shared search core behind [`crate::linearizability`] and the
//! extension-family checks of [`crate::strong`]. It replaces the original recursive
//! checker (which cloned a `(Vec<bool>, Vec<(RegisterId, V)>)` memo key and rescanned
//! real-time precedence in `O(n²)` at every node) with four cooperating optimizations:
//!
//! 1. **Value interning** — every distinct register value in the history (plus the
//!    initial value) is mapped once to a dense `u32` id, so simulated register state is
//!    a small integer and memo keys never clone `V`.
//! 2. **Precedence bitsets** — the real-time relation is precomputed into per-op
//!    predecessor bitsets (`u64` blocks). An op is a Wing–Gong candidate iff its
//!    predecessor bits are covered by the taken set: one mask-and-compare per op
//!    instead of an `O(n)` rescan of `Operation::precedes`.
//! 3. **Iterative DFS over packed keys** — the search runs on an explicit frame stack
//!    (no recursion), and each visited configuration is memoized as a single
//!    `Box<[u64]>` that packs the taken bitset and the interned register state, hashed
//!    with a fast multiply-rotate hasher.
//! 4. **Per-register composition** — registers are independent objects, so a
//!    multi-register history is linearizable iff each per-register subhistory is
//!    (P-compositionality, Herlihy & Wing). [`Engine::check`] therefore partitions the
//!    history by [`RegisterId`], searches each subhistory separately, and merges the
//!    per-register witnesses into one global linearization by topologically sorting the
//!    union of the witness orders with the real-time relation. This turns one
//!    exponential joint search into several much smaller ones.
//!
//! Two parallel/lazy layers sit on top (this is where the `vendor/rayon` fork-join
//! pool comes in):
//!
//! 5. **Parallel per-register search** — the per-register sub-searches are independent,
//!    so [`Engine::check`] fans them across the current rayon pool and then *replays*
//!    the sequential shared-budget accounting over the per-search statistics. The
//!    replay makes the parallel path bit-identical to [`Engine::check_sequential`]:
//!    same verdict, same witness, same statistics, at any thread count. When the
//!    replay detects that the sequential pass would have exhausted its budget (whose
//!    truncation point depends on the shared-budget interleaving), it reruns
//!    sequentially rather than guessing — limit-hit searches are the rare adversarial
//!    case, and determinism there matters more than speed. [`Engine::check_many`]
//!    fans whole histories (build + check) across the pool the same way, which is the
//!    shape the differential suites and adversary sweeps actually run.
//! 6. **Per-register enumeration with a lazy interleaving product** —
//!    [`Engine::enumerate`] on a multi-register history first enumerates each
//!    register's linearizations separately, folds them into per-register prefix
//!    tries, and then walks the *product* of the tries lazily, interleaving under the
//!    global real-time relation. The product DFS visits only prefixes of valid
//!    per-register linearizations (the joint search also wades through
//!    state-inconsistent dead ends), emits orders in **exactly** the joint search's
//!    order, and stops as soon as `max_results` orders exist. Enumeration stays
//!    bounded by an explicit work cap — per-register search nodes plus product nodes —
//!    so adversarial inputs fail loudly instead of hanging. One register whose *own*
//!    linearization space blows the budget makes the product's discovery stage
//!    impossible, so that case falls back to the joint DFS (lazily bounded by
//!    `max_results`, like the pre-product enumerator); total work stays within 2x
//!    the cap.
//!
//! # The memo arena
//!
//! Visited configurations are memoized in a single open-addressed table
//! (`MemoTable` inside [`SearchScratch`]) whose variable-length keys live in a bump
//! arena of `u64` words — no `Box<[u64]>` allocation per insert, no hashbrown control
//! machinery, and scratch reuse keeps both the arena and the slot array warm across
//! searches (cleared by truncation / generation bump, not by freeing).
//!
//! **Key layout.** A configuration is `(taken, vals)`: the taken bitset (one `u64`
//! word per 64 ops) and the interned register state (two `u32` slot values packed per
//! word). Subproblems whose bitset fits one word pack as `[taken₀, vals…]`; wider
//! bitsets pack as `[skip, taken[skip..], vals…]`, where `skip` counts the leading
//! all-ones taken words dropped by **prefix compaction**: once a maximal prefix of
//! the sub-history is fully linearized, those words carry no information beyond their
//! count, so deep search states — the bulk of a long history's memo traffic — hash
//! and compare strictly fewer words. The skip word keeps packing injective (distinct
//! configurations never collide as key word sequences; the round-trip property test
//! pins this), so compaction changes key bytes, never memo semantics.
//!
//! **Table mechanics.** Slots are one `u64` each: an 8-bit generation tag (a cleared
//! table just bumps the generation instead of zeroing), a 16-bit hash fingerprint,
//! and a 40-bit arena offset. Probing is linear over a power-of-two slot array,
//! growth doubles at 7/8 load and rehashes from the arena, and the per-search initial
//! size is a deterministic function of the subproblem (never of warm capacity), so
//! the reported [`MemoStats`] — slot probes, hits, arena high-water — are
//! bit-identical whether the scratch is cold or reused.
//!
//! # Within-register sharding
//!
//! Per-register composition (4.) parallelizes *across* registers; one hot register
//! still searches alone. When a register's root DFS frontier (its Wing–Gong
//! candidates at the empty configuration) reaches the engine's
//! [split threshold](Engine::with_split_threshold), the search is partitioned into a
//! fixed number of shards — contiguous ranges of the root candidate scan, each a
//! complete DFS over "linearizations starting in my range" with its own memo table.
//! The *canonical* ([`Engine::check_sequential`]) semantics runs the shards in
//! ascending range order under the shared state budget, stopping at the first
//! witness; the parallel path runs them speculatively fork-join, each with a private
//! full budget, then **replays** the sequential budget accounting over the per-shard
//! statistics in shard order — exactly the scheme the per-register fan-out uses — so
//! verdict, witness, and every statistic (including [`MemoStats`]) are bit-identical
//! to `check_sequential` at any thread count, with a sequential rerun whenever the
//! replay detects the shared budget would have run dry. Shard geometry depends only
//! on the subproblem and the threshold, never on the pool width.

use crate::history::History;
use crate::ids::{OpId, RegisterId, Time};
use crate::op::{OpKind, Operation};
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Fast hashing
// ---------------------------------------------------------------------------

/// A multiply-rotate hasher in the style of `rustc-hash`'s `FxHasher`: not
/// collision-resistant against adversaries, but memo keys are search-internal so the
/// only requirement is speed and decent dispersion.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

const FAST_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash ^ word).rotate_left(5).wrapping_mul(FAST_SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Distinct values below which the interner stays a linear-scanned dense list.
const INTERN_LINEAR_MAX: usize = 16;

/// Dense value interner. Ids are assigned in insertion order (the initial value is
/// always id 0). Small value sets — the overwhelmingly common case: a differential
/// corpus history touches a handful of values — are interned by linear scan over a
/// dense list, paying neither a table allocation nor any hashing per check; past
/// [`INTERN_LINEAR_MAX`] distinct values the interner spills into a hash map with
/// identical id assignment.
#[derive(Debug)]
struct ValueInterner<'a, V> {
    dense: Vec<&'a V>,
    spill: Option<HashMap<&'a V, u32, FastBuildHasher>>,
}

impl<'a, V: RegisterValue> ValueInterner<'a, V> {
    fn new() -> Self {
        ValueInterner {
            dense: Vec::new(),
            spill: None,
        }
    }

    /// Interns `v`, returning its dense id (allocating a fresh id on first sight).
    fn intern(&mut self, v: &'a V) -> u32 {
        if let Some(map) = &mut self.spill {
            let next = map.len() as u32;
            return *map.entry(v).or_insert(next);
        }
        if let Some(i) = self.dense.iter().position(|&seen| seen == v) {
            return i as u32;
        }
        if self.dense.len() == INTERN_LINEAR_MAX {
            let mut map: HashMap<&'a V, u32, FastBuildHasher> = HashMap::with_capacity_and_hasher(
                2 * INTERN_LINEAR_MAX,
                FastBuildHasher::default(),
            );
            for (i, &seen) in self.dense.iter().enumerate() {
                map.insert(seen, i as u32);
            }
            let id = map.len() as u32;
            map.insert(v, id);
            self.spill = Some(map);
            return id;
        }
        self.dense.push(v);
        (self.dense.len() - 1) as u32
    }

    /// Id of an already-interned value.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never interned.
    fn get(&self, v: &V) -> u32 {
        match &self.spill {
            Some(map) => map[v],
            None => self
                .dense
                .iter()
                .position(|&seen| seen == v)
                .expect("value was interned") as u32,
        }
    }

    fn len(&self) -> usize {
        match &self.spill {
            Some(map) => map.len(),
            None => self.dense.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Prepared subproblems
// ---------------------------------------------------------------------------

pub(crate) const WORD_BITS: usize = 64;

#[inline]
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// One operation of a prepared subproblem, fully interned.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LocalOp {
    /// Index into the engine's global filtered op list.
    pub(crate) global: u32,
    /// Register slot within the subproblem (always 0 for per-register searches).
    pub(crate) slot: u32,
    /// Interned payload: the written value for writes, the returned value for
    /// completed reads.
    pub(crate) value: u32,
    pub(crate) is_write: bool,
    pub(crate) completed: bool,
}

/// A self-contained search instance over a subset of the history's operations.
#[derive(Debug)]
pub(crate) struct SubProblem {
    pub(crate) ops: Vec<LocalOp>,
    /// Flat predecessor matrix with `words` u64s per row: row `i` holds one bit per
    /// local op `j` with `op_j.precedes(op_i)`.
    pub(crate) preds: Vec<u64>,
    /// Row stride of `preds` in words.
    pub(crate) words: usize,
    /// Number of register slots (1 for per-register subproblems).
    pub(crate) slots: usize,
    /// Number of completed ops that a successful linearization must contain.
    pub(crate) completed: usize,
    /// Interned initial value of every slot.
    pub(crate) init_id: u32,
}

impl SubProblem {
    pub(crate) fn new<V: RegisterValue>(
        ops: &[&Operation<V>],
        members: &[u32],
        slot_of_register: impl Fn(RegisterId) -> u32,
        value_id: impl Fn(&V) -> u32,
        init_id: u32,
        slots: usize,
    ) -> Self {
        let local_ops: Vec<LocalOp> = members
            .iter()
            .map(|&g| {
                let op = ops[g as usize];
                let (is_write, value) = match &op.kind {
                    OpKind::Write(v) => (true, value_id(v)),
                    OpKind::Read(Some(v)) => (false, value_id(v)),
                    OpKind::Read(None) => unreachable!("pending reads are filtered out"),
                };
                LocalOp {
                    global: g,
                    slot: slot_of_register(op.register),
                    value,
                    is_write,
                    completed: op.is_complete(),
                }
            })
            .collect();
        let n = local_ops.len();
        let words = words_for(n).max(1);
        let mut preds = vec![0u64; n * words];
        // Sweep in invocation order, accumulating a running bitset of the ops that
        // have already responded: row(i) = { j : resp(j) < inv(i) }, i.e. "j precedes
        // i". One sorted pass plus a bitset copy per row replaces the previous
        // all-pairs rescan, and produces a bit-identical matrix.
        let mut by_inv: Vec<u32> = (0..n as u32).collect();
        by_inv.sort_unstable_by_key(|&i| ops[local_ops[i as usize].global as usize].invoked_at);
        let mut by_resp: Vec<(Time, u32)> = local_ops
            .iter()
            .enumerate()
            .filter_map(|(j, op)| ops[op.global as usize].responded_at.map(|t| (t, j as u32)))
            .collect();
        by_resp.sort_unstable();
        let mut running = vec![0u64; words];
        let mut responded = 0usize;
        for &i in &by_inv {
            let inv = ops[local_ops[i as usize].global as usize].invoked_at;
            while responded < by_resp.len() && by_resp[responded].0 < inv {
                let j = by_resp[responded].1 as usize;
                running[j / WORD_BITS] |= 1u64 << (j % WORD_BITS);
                responded += 1;
            }
            preds[i as usize * words..(i as usize + 1) * words].copy_from_slice(&running);
        }
        let completed = local_ops.iter().filter(|o| o.completed).count();
        SubProblem {
            ops: local_ops,
            preds,
            words,
            slots,
            completed,
            init_id,
        }
    }

    /// Returns `true` if every real-time predecessor of local op `i` is in `taken`.
    #[inline]
    fn preds_satisfied(&self, i: usize, taken: &[u64]) -> bool {
        let row = &self.preds[i * self.words..(i + 1) * self.words];
        row.iter().zip(taken.iter()).all(|(p, t)| p & !t == 0)
    }

    /// Returns `true` if local op `i` is a Wing–Gong candidate: untaken, real-time
    /// minimal among untaken ops, and consistent with the current register state.
    #[inline]
    fn is_candidate(&self, i: usize, taken: &[u64], vals: &[u32]) -> bool {
        let word = i / WORD_BITS;
        let bit = 1u64 << (i % WORD_BITS);
        if taken[word] & bit != 0 {
            return false;
        }
        // All predecessors must already be linearized.
        if !self.preds_satisfied(i, taken) {
            return false;
        }
        let op = &self.ops[i];
        // Writes are always applicable; completed reads must match the state.
        op.is_write || vals[op.slot as usize] == op.value
    }
}

// ---------------------------------------------------------------------------
// The arena-backed memo table
// ---------------------------------------------------------------------------

/// Counters of the arena-backed memo table, reported per check on
/// [`CheckOutcome`] (and surfaced as `CheckStats::memo` by the session API).
///
/// Like every other statistic, these are deterministic: bit-identical across thread
/// policies, pool widths, and scratch reuse (the table's logical geometry is a
/// function of the subproblem alone — see the module docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Open-addressing slot inspections across all memo lookups of the check.
    pub probes: u64,
    /// Lookups that found the configuration already memoized (each one prunes a
    /// search subtree; equals `states_memoized` for plain witness checks).
    pub hits: u64,
    /// High-water mark of memo-key words resident in any single sub-search's arena.
    pub arena_high_water: u64,
}

impl MemoStats {
    #[inline]
    fn absorb(&mut self, other: &MemoStats) {
        self.probes += other.probes;
        self.hits += other.hits;
        self.arena_high_water = self.arena_high_water.max(other.arena_high_water);
    }
}

/// A HyperLogLog sketch of distinct memoized search configurations.
///
/// The memo table hashes every configuration it stores (the same 64-bit hash that
/// feeds the slot index and the 16-bit slot fingerprint); the sketch folds each
/// fresh insert's hash into 64 one-byte HLL registers, so a long-lived owner — a
/// checking service aggregating across requests — can estimate how many *distinct*
/// search states it has memoized without keeping any of them. Merging is
/// element-wise max: commutative, associative, and idempotent, so re-observing a
/// request or merging per-register sketches in any order gives the same sketch.
///
/// Like every other search statistic, the per-check sketch is deterministic —
/// bit-identical across thread policies, pool widths, and scratch reuse (the
/// parallel determinism suite compares it as part of [`CheckOutcome`] equality).
/// With 64 registers the estimate's standard error is ~13%: a metrics sketch, not
/// an exact count. Configurations are hashed per register subproblem, so two
/// structurally identical registers contribute the same fingerprints — the sketch
/// measures distinct search *shapes*, which is exactly what a cross-request cache
/// observability metric wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSketch {
    regs: [u8; HLL_REGISTERS],
}

/// Number of HLL registers in a [`StateSketch`]; the top `HLL_INDEX_BITS` bits of a
/// fingerprint pick the register, the rest feed the rank.
const HLL_REGISTERS: usize = 64;
const HLL_INDEX_BITS: u32 = 6;

impl Default for StateSketch {
    fn default() -> Self {
        StateSketch {
            regs: [0; HLL_REGISTERS],
        }
    }
}

impl StateSketch {
    /// Folds one 64-bit fingerprint into the sketch.
    #[inline]
    pub fn observe(&mut self, hash: u64) {
        let idx = (hash >> (64 - HLL_INDEX_BITS)) as usize;
        // Rank of the remaining 58 bits: leading-zero count + 1, saturating when
        // they are all zero. `u8::max` keeps the per-register maximum.
        let rank = ((hash << HLL_INDEX_BITS) | 1 << (HLL_INDEX_BITS - 1)).leading_zeros() + 1;
        let slot = &mut self.regs[idx];
        *slot = (*slot).max(rank as u8);
    }

    /// Element-wise max merge of another sketch.
    pub fn merge(&mut self, other: &StateSketch) {
        for (a, &b) in self.regs.iter_mut().zip(other.regs.iter()) {
            *a = (*a).max(b);
        }
    }

    /// Read-only view of the raw HLL registers.
    ///
    /// This is the stable coverage-fingerprint hook: consumers that treat the
    /// sketch as an AFL-style coverage map (the schedule fuzzer in `rlt-mp`)
    /// compare registers directly instead of going through the cardinality
    /// estimate, so "novel coverage" stays exact, deterministic, and
    /// independent of the estimator constants.
    #[must_use]
    pub fn registers(&self) -> &[u8; HLL_REGISTERS] {
        &self.regs
    }

    /// `true` when every register of `other` is already dominated by this
    /// sketch — merging `other` in would change nothing.
    #[must_use]
    pub fn covers(&self, other: &StateSketch) -> bool {
        self.regs.iter().zip(other.regs.iter()).all(|(a, b)| a >= b)
    }

    /// Merges `other` and reports whether the merge raised any register.
    ///
    /// This is the coverage-guided fuzzing primitive: a replay whose sketch
    /// raises a register has visited a memoized search configuration whose
    /// fingerprint class no earlier corpus entry produced. Because merge is an
    /// element-wise max, the result is independent of merge order, so
    /// per-worker shards folded at a generation barrier report the same set of
    /// novel entries as a sequential pass.
    pub fn merge_novel(&mut self, other: &StateSketch) -> bool {
        let novel = !self.covers(other);
        self.merge(other);
        novel
    }

    /// `true` when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
    }

    /// Estimated number of distinct fingerprints observed (standard HLL estimator
    /// with the linear-counting small-range correction).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        let zeros = self.regs.iter().filter(|&&r| r == 0).count();
        let sum: f64 = self.regs.iter().map(|&r| 0.5f64.powi(i32::from(r))).sum();
        // alpha_64 = 0.7213 / (1 + 1.079 / 64).
        let raw = 0.709_213 * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// [`StateSketch::estimate`] rounded to the nearest integer, for display and
    /// deterministic diffing.
    #[must_use]
    pub fn estimate_rounded(&self) -> u64 {
        self.estimate().round() as u64
    }
}

/// Slot layout: `generation (8) | fingerprint (16) | arena offset + 1 (40)`.
const SLOT_GEN_SHIFT: u32 = 56;
const SLOT_FP_SHIFT: u32 = 40;
const SLOT_FP_MASK: u64 = 0xFFFF;
const SLOT_OFF_MASK: u64 = (1 << SLOT_FP_SHIFT) - 1;

/// Packs a `(taken, vals)` configuration into `out` in the arena key format (see the
/// module docs): multi-word taken sets get a leading skip word counting the all-ones
/// prefix words dropped by compaction (`compact = false` forces skip 0 and keeps
/// every word — used to prove compaction is semantics-free), single-word sets are
/// stored bare; slot values follow, packed two per word.
fn write_key(out: &mut Vec<u64>, taken: &[u64], vals: &[u32], compact: bool) {
    debug_assert!(!taken.is_empty() && !vals.is_empty());
    if taken.len() > 1 {
        let skip = if compact {
            taken.iter().take_while(|&&w| w == u64::MAX).count()
        } else {
            0
        };
        out.push(skip as u64);
        out.extend_from_slice(&taken[skip..]);
    } else {
        out.push(taken[0]);
    }
    let mut pairs = vals.chunks_exact(2);
    for p in pairs.by_ref() {
        out.push(u64::from(p[0]) | (u64::from(p[1]) << 32));
    }
    if let [last] = pairs.remainder() {
        out.push(u64::from(*last));
    }
}

/// One round of the [`FastHasher`] mix, exposed for the memo table's register-only
/// fast path (which must hash exactly like [`hash_words`] so growth rehashes agree).
#[inline]
fn fx_mix(h: u64, word: u64) -> u64 {
    (h ^ word).rotate_left(5).wrapping_mul(FAST_SEED)
}

/// Mixes a key's words with the [`FastHasher`] rounds and spreads the result so both
/// the low bits (slot index) and the high bits (fingerprint) carry entropy.
#[inline]
fn hash_words(words: &[u64]) -> u64 {
    let hash = words.iter().fold(0u64, |h, &w| fx_mix(h, w));
    hash ^ (hash >> 32)
}

/// The open-addressed memo table: variable-length keys in a `u64` bump arena,
/// one-word slots, linear probing over a power-of-two slot array. Cleared per search
/// by truncating the arena and bumping the slot generation — no per-insert
/// allocation, and a warm table's buffers are reused byte-for-byte.
#[derive(Debug)]
struct MemoTable {
    /// Bump arena of key words; cleared by truncation on `begin`.
    arena: Vec<u64>,
    /// Physical slot array; the logical table is `slots[..mask + 1]`.
    slots: Vec<u64>,
    /// Scratch copy of the logical slots during growth rehashes.
    spare: Vec<u64>,
    mask: usize,
    len: usize,
    grow_at: usize,
    /// Rolling 1..=255 tag marking live slots; a full zero-fill happens only on wrap.
    generation: u64,
    taken_words: usize,
    vals_words: usize,
    compact: bool,
    /// Test hook proving compaction never changes verdicts or state counts.
    compaction_enabled: bool,
    probes: u64,
    /// Physical buffer growths since construction — the scratch-reuse suite asserts
    /// this stays flat across a warm batch.
    reallocations: u64,
    /// HLL sketch of the fresh-insert hashes of the current search (cleared on
    /// [`MemoTable::begin`]; a resumed search keeps accumulating, which is exactly
    /// the set a from-scratch search of the grown subproblem would have inserted).
    hll: StateSketch,
}

impl Default for MemoTable {
    fn default() -> Self {
        MemoTable {
            arena: Vec::new(),
            slots: Vec::new(),
            spare: Vec::new(),
            mask: 0,
            len: 0,
            grow_at: 0,
            generation: 0,
            taken_words: 1,
            vals_words: 1,
            compact: false,
            compaction_enabled: true,
            probes: 0,
            reallocations: 0,
            hll: StateSketch::default(),
        }
    }
}

impl MemoTable {
    /// Resets the table for one sub-search over keys of `taken_words` bitset words
    /// and `slot_count` register slots. The logical size is a deterministic function
    /// of `capacity_hint` so probe counts never depend on how warm the buffers are;
    /// physical buffers only ever grow by the shortfall.
    fn begin(&mut self, taken_words: usize, slot_count: usize, capacity_hint: usize) {
        self.taken_words = taken_words.max(1);
        self.vals_words = slot_count.div_ceil(2).max(1);
        self.compact = self.compaction_enabled && taken_words > 1;
        let size = (capacity_hint * 2).next_power_of_two().max(16);
        if self.slots.len() < size {
            if self.slots.capacity() < size {
                self.reallocations += 1;
            }
            self.slots.resize(size, 0);
        }
        self.generation += 1;
        if self.generation == 256 {
            self.slots.fill(0);
            self.generation = 1;
        }
        self.mask = size - 1;
        self.grow_at = size - size / 8;
        self.len = 0;
        self.arena.clear();
        self.probes = 0;
        self.hll = StateSketch::default();
    }

    /// Memoizes the configuration, returning `true` if it was not seen before in
    /// this search. Keys are only appended to the arena on fresh inserts.
    #[inline]
    fn insert(&mut self, taken: &[u64], vals: &[u32]) -> bool {
        if self.taken_words == 1 && self.vals_words == 1 {
            // The dominant shape (every per-register search of a <= 64-op register):
            // a two-word key handled entirely in registers, no tentative arena write.
            let packed_vals = if vals.len() == 1 {
                u64::from(vals[0])
            } else {
                u64::from(vals[0]) | (u64::from(vals[1]) << 32)
            };
            self.insert_small(taken[0], packed_vals)
        } else {
            self.insert_general(taken, vals)
        }
    }

    /// Two-word-key fast path; bit-compatible with [`MemoTable::insert_general`]
    /// (same hash sequence as [`hash_words`] over `[w0, w1]`, so [`MemoTable::grow`]
    /// rehashes both kinds of entry identically).
    #[inline]
    fn insert_small(&mut self, w0: u64, w1: u64) -> bool {
        let h = fx_mix(fx_mix(0, w0), w1);
        let hash = h ^ (h >> 32);
        let fp = (hash >> 48) & SLOT_FP_MASK;
        let gen = self.generation;
        // Deriving the mask from the logical slice's own length lets the bounds
        // checks in the probe loop be elided (`idx & mask` is provably in range).
        let slots = &mut self.slots[..self.mask + 1];
        let mask = slots.len() - 1;
        let mut idx = hash as usize & mask;
        let mut probes = 1u64;
        let fresh = loop {
            let slot = slots[idx];
            if slot >> SLOT_GEN_SHIFT != gen {
                let off = self.arena.len();
                if self.arena.capacity() - off < 2 {
                    self.reallocations += 1;
                    self.arena.reserve(self.arena.capacity().max(64));
                }
                debug_assert!(
                    (off as u64) < SLOT_OFF_MASK,
                    "memo arena exceeds 2^40 words"
                );
                self.arena.push(w0);
                self.arena.push(w1);
                slots[idx] = (gen << SLOT_GEN_SHIFT) | (fp << SLOT_FP_SHIFT) | (off as u64 + 1);
                break true;
            }
            if (slot >> SLOT_FP_SHIFT) & SLOT_FP_MASK == fp {
                let o = (slot & SLOT_OFF_MASK) as usize - 1;
                if self.arena[o] == w0 && self.arena[o + 1] == w1 {
                    break false;
                }
            }
            idx = (idx + 1) & mask;
            probes += 1;
        };
        self.probes += probes;
        if fresh {
            self.hll.observe(hash);
            self.len += 1;
            if self.len >= self.grow_at {
                self.grow();
            }
        }
        fresh
    }

    /// General variable-length-key path (multi-word taken bitsets and the joint
    /// multi-slot subproblem): the key is written at the arena tip, hashed from
    /// there, and truncated away again on a hit.
    fn insert_general(&mut self, taken: &[u64], vals: &[u32]) -> bool {
        let off = self.arena.len();
        let max_len = 1 + self.taken_words + self.vals_words;
        if self.arena.capacity() - off < max_len {
            self.reallocations += 1;
            self.arena.reserve(self.arena.capacity().max(64));
        }
        debug_assert!(
            (off as u64) < SLOT_OFF_MASK,
            "memo arena exceeds 2^40 words"
        );
        write_key(&mut self.arena, taken, vals, self.compact);
        let len = self.arena.len() - off;
        let hash = hash_words(&self.arena[off..off + len]);
        let fp = (hash >> 48) & SLOT_FP_MASK;
        let gen = self.generation;
        let slots = &mut self.slots[..self.mask + 1];
        let mask = slots.len() - 1;
        let mut idx = hash as usize & mask;
        let mut probes = 1u64;
        let fresh = loop {
            let slot = slots[idx];
            if slot >> SLOT_GEN_SHIFT != gen {
                slots[idx] = (gen << SLOT_GEN_SHIFT) | (fp << SLOT_FP_SHIFT) | (off as u64 + 1);
                break true;
            }
            if (slot >> SLOT_FP_SHIFT) & SLOT_FP_MASK == fp {
                let o = (slot & SLOT_OFF_MASK) as usize - 1;
                // `get` bounds the stored key: a shorter stored key differs in its
                // first word (the skip count), so the failed compare is correct even
                // when the slice would run past the arena tip.
                if self
                    .arena
                    .get(o..o + len)
                    .is_some_and(|k| k == &self.arena[off..off + len])
                {
                    self.arena.truncate(off);
                    break false;
                }
            }
            idx = (idx + 1) & mask;
            probes += 1;
        };
        self.probes += probes;
        if fresh {
            self.hll.observe(hash);
            self.len += 1;
            if self.len >= self.grow_at {
                self.grow();
            }
        }
        fresh
    }

    /// Doubles the logical slot array and rehashes every live entry from the arena.
    fn grow(&mut self) {
        let old_size = self.mask + 1;
        let new_size = old_size * 2;
        let mut spare = std::mem::take(&mut self.spare);
        if spare.capacity() < old_size {
            self.reallocations += 1;
        }
        spare.clear();
        spare.extend_from_slice(&self.slots[..old_size]);
        if self.slots.len() < new_size {
            if self.slots.capacity() < new_size {
                self.reallocations += 1;
            }
            self.slots.resize(new_size, 0);
        }
        self.slots[..new_size].fill(0);
        self.mask = new_size - 1;
        self.grow_at = new_size - new_size / 8;
        for &slot in &spare {
            if slot >> SLOT_GEN_SHIFT != self.generation {
                continue;
            }
            let off = (slot & SLOT_OFF_MASK) as usize - 1;
            let len = self.key_len_at(off);
            let hash = hash_words(&self.arena[off..off + len]);
            let mut idx = hash as usize & self.mask;
            while self.slots[idx] >> SLOT_GEN_SHIFT == self.generation {
                idx = (idx + 1) & self.mask;
            }
            self.slots[idx] = slot;
        }
        self.spare = spare;
    }

    /// Length in words of the key stored at `off`, recovered from the skip word (the
    /// per-search key geometry is fixed otherwise).
    fn key_len_at(&self, off: usize) -> usize {
        if self.taken_words > 1 {
            let skip = self.arena[off] as usize;
            1 + (self.taken_words - skip) + self.vals_words
        } else {
            1 + self.vals_words
        }
    }

    /// Drains the per-search counters into `stats`. The arena high-water mark is
    /// simply the arena length at drain time: kept keys only ever accumulate within
    /// one search (hit lookups append nothing and tentative keys are truncated), so
    /// the final length *is* the search's maximum.
    fn drain_into(&self, stats: &mut SearchStats) {
        stats.memo.probes += self.probes;
        stats.memo.arena_high_water = stats.memo.arena_high_water.max(self.arena.len() as u64);
        stats.sketch.merge(&self.hll);
    }
}

// ---------------------------------------------------------------------------
// Reusable search scratch
// ---------------------------------------------------------------------------

/// Reusable buffers of one witness search: the taken bitset, the simulated register
/// state, the partial linearization order, the explicit DFS frame stack, and the
/// arena-backed memo table (open addressing over packed keys in a `u64` bump arena —
/// zero allocations per node; see the module docs for the layout).
///
/// A fresh `SearchScratch` is just empty buffers; reusing one across searches keeps
/// the allocations (arena, slot array, stack) warm. Scratch contents never influence
/// results — every buffer is reset on entry and the memo table's logical geometry is
/// deterministic — so reuse is invisible to verdicts, witnesses, and statistics,
/// memo probe counts included.
#[derive(Debug, Default)]
pub struct SearchScratch {
    taken: Vec<u64>,
    vals: Vec<u32>,
    order: Vec<u32>,
    stack: Vec<Frame>,
    memo: MemoTable,
}

impl SearchScratch {
    /// Number of configurations currently memoized in the scratch's table — the
    /// incremental session's measure of how much frozen state a resume reuses.
    pub(crate) fn memo_entries(&self) -> u64 {
        self.memo.len as u64
    }

    /// Whether op `i` is taken in the frozen configuration (false when out of
    /// range). Lets the incremental session maintain the frozen order's completed
    /// count across pending-write flips without recounting on resume.
    pub(crate) fn frozen_taken(&self, i: usize) -> bool {
        self.taken
            .get(i / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (i % WORD_BITS)) != 0)
    }
}

/// A shared pool of [`SearchScratch`] arenas.
///
/// [`Engine::check_with`] and friends pop an arena per worker (fork-join sub-searches
/// each take their own) and park it back afterwards, so a long-lived owner — a
/// [`crate::Checker`] — amortizes search allocations across calls and across the
/// histories of a batch. Any arena fits any search; the pool is just a free list.
#[derive(Debug, Default)]
pub struct ScratchPool {
    arenas: std::sync::Mutex<Vec<SearchScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool; arenas are created on demand and kept warm thereafter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of idle arenas currently parked in the pool.
    #[must_use]
    pub fn idle_arenas(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SearchScratch>> {
        // A poisoned pool only means a search panicked mid-check; the buffers are
        // reset on every acquire, so the arenas themselves are still fine.
        self.arenas.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn acquire(&self) -> SearchScratch {
        self.lock().pop().unwrap_or_default()
    }

    pub(crate) fn release(&self, scratch: SearchScratch) {
        self.lock().push(scratch);
    }
}

/// The process-wide fallback pool behind [`Engine::check`] /
/// [`Engine::check_sequential`]. Callers that don't hold a [`crate::Checker`] (shims,
/// one-off checks, doctests) used to pay a cold arena per call; parking the arenas in
/// one shared static keeps them warm instead. Scratch reuse is invisible to results,
/// so this is purely a perf fix.
pub(crate) fn default_scratch_pool() -> &'static ScratchPool {
    static POOL: OnceLock<ScratchPool> = OnceLock::new();
    POOL.get_or_init(ScratchPool::new)
}

// ---------------------------------------------------------------------------
// Iterative searches
// ---------------------------------------------------------------------------

/// A frame of the explicit DFS stack. The frame owns the op that was applied to enter
/// it (`creator`, `NO_OP` for the root) and lazily scans candidates from `scan` up to
/// `end`. Only a root frame carries a real bound (a sharded search's root is
/// restricted to its shard's candidate range); [`drive_search`] creates every child
/// frame with the [`UNBOUNDED`] sentinel, clamped to the *current* op count at scan
/// time. That keeps a frozen stack valid when the incremental session grows the
/// subproblem under it: [`resume_witness`] only has to extend the root's bound
/// instead of rewriting every frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    creator: u32,
    /// Value of the creator's slot before the creator was applied (writes only).
    restore: u32,
    scan: u32,
    end: u32,
}

const NO_OP: u32 = u32::MAX;

/// [`Frame::end`] sentinel: scan to the subproblem's current op count.
const UNBOUNDED: u32 = u32::MAX;

/// Statistics of one sub-search.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SearchStats {
    pub(crate) states_explored: u64,
    pub(crate) states_memoized: u64,
    pub(crate) limit_hit: bool,
    pub(crate) memo: MemoStats,
    pub(crate) sketch: StateSketch,
}

impl SearchStats {
    /// Folds another sub-search's statistics in (the sequential accounting the
    /// parallel replays reproduce); `limit_hit` is handled by the callers.
    pub(crate) fn absorb(&mut self, other: &SearchStats) {
        self.states_explored += other.states_explored;
        self.states_memoized += other.states_memoized;
        self.memo.absorb(&other.memo);
        self.sketch.merge(&other.sketch);
    }
}

/// Depth-first search for a single witness over `sub`, memoized on arena-packed
/// `(taken, state)` keys. `budget` is shared across sub-searches so the global
/// state-limit semantics match the original joint checker. All working buffers live
/// in `scratch`, reset on entry — reuse across searches is invisible to results.
fn search_witness(
    sub: &SubProblem,
    budget: &mut u64,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Option<Vec<u32>> {
    search_witness_range(sub, 0..sub.ops.len() as u32, budget, stats, scratch)
}

/// [`search_witness`] with the **root** candidate scan restricted to
/// `root.start..root.end` — the building block of within-register sharding: shards
/// are contiguous root ranges, and the full search is the `0..n` range. Frames below
/// the root always scan every op.
///
/// The apply/undo frame bookkeeping here is mirrored in [`OrderWalk`] (which differs
/// only in success handling and the absence of memoization); a fix to either driver
/// almost certainly belongs in both.
fn search_witness_range(
    sub: &SubProblem,
    root: std::ops::Range<u32>,
    budget: &mut u64,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Option<Vec<u32>> {
    let n = sub.ops.len();
    let words = words_for(n);
    let SearchScratch {
        taken,
        vals,
        order,
        stack,
        memo,
    } = scratch;
    taken.clear();
    taken.resize(words, 0);
    vals.clear();
    vals.resize(sub.slots, sub.init_id);
    order.clear();
    // Size the memo table for a burst of nodes (sequential-ish histories then never
    // rehash). The logical size is deterministic — [`memo_size_class`] mirrors the
    // resulting slot-array size for the incremental session's invalidation rule —
    // and a warm arena only skips the *physical* allocation.
    let memo_cap = (n * 4).clamp(16, 1024);
    memo.begin(words, sub.slots, memo_cap);
    stack.clear();
    stack.push(Frame {
        creator: NO_OP,
        restore: 0,
        scan: root.start,
        end: (root.end as usize).min(n) as u32,
    });
    let witness = drive_search(sub, budget, stats, taken, vals, order, stack, memo, 0, true);
    scratch.memo.drain_into(stats);
    witness
}

/// The slot-array size [`MemoTable::begin`] picks for a plain witness search over an
/// `n`-op subproblem (the capacity hint above doubled, rounded up to a power of two).
/// The incremental session compares this class across appends: a search resumed on a
/// grown subproblem keeps the frozen table, which is only bit-compatible with a
/// from-scratch search while the class is unchanged.
pub(crate) fn memo_size_class(n: usize) -> usize {
    ((n * 4).clamp(16, 1024) * 2).next_power_of_two().max(16)
}

/// The core DFS loop over an already-prepared configuration: `taken` / `vals` /
/// `order` / `stack` describe the current node (with `taken_completed` completed ops
/// taken), and `entering` says whether that node still owes its entry bookkeeping
/// (state accounting, budget, success test, memo insert). [`search_witness_range`]
/// starts it from the empty configuration; [`resume_witness`] re-enters it at a
/// frozen search's success configuration. Memo counters stay in `memo`; the caller
/// drains or assigns them.
#[allow(clippy::too_many_arguments)]
fn drive_search(
    sub: &SubProblem,
    budget: &mut u64,
    stats: &mut SearchStats,
    taken: &mut [u64],
    vals: &mut [u32],
    order: &mut Vec<u32>,
    stack: &mut Vec<Frame>,
    memo: &mut MemoTable,
    mut taken_completed: usize,
    mut entering: bool,
) -> Option<Vec<u32>> {
    let n = sub.ops.len();
    let mut witness = None;

    while let Some(frame) = stack.last_mut() {
        if entering {
            entering = false;
            stats.states_explored += 1;
            if *budget == 0 {
                stats.limit_hit = true;
                break;
            }
            *budget -= 1;
            if taken_completed == sub.completed {
                // Clone rather than take: the scratch keeps its warm buffer for the
                // next search, and one witness allocation per sub-search is noise.
                witness = Some(order.clone());
                break;
            }
            if !memo.insert(taken, vals) {
                stats.states_memoized += 1;
                stats.memo.hits += 1;
                frame.scan = frame.end; // force an immediate pop
            }
        }
        let scan_end = (frame.end as usize).min(n);
        let mut advanced = false;
        let mut i = frame.scan as usize;
        while i < scan_end {
            if sub.is_candidate(i, taken, vals) {
                frame.scan = (i + 1) as u32;
                let op = sub.ops[i];
                let restore = vals[op.slot as usize];
                taken[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                if op.completed {
                    taken_completed += 1;
                }
                if op.is_write {
                    vals[op.slot as usize] = op.value;
                }
                order.push(i as u32);
                stack.push(Frame {
                    creator: i as u32,
                    restore,
                    scan: 0,
                    end: UNBOUNDED,
                });
                entering = true;
                advanced = true;
                break;
            }
            i += 1;
        }
        if !advanced {
            let done = *stack.last().expect("non-empty stack");
            stack.pop();
            if done.creator != NO_OP {
                let c = done.creator as usize;
                let op = sub.ops[c];
                taken[c / WORD_BITS] &= !(1u64 << (c % WORD_BITS));
                if op.completed {
                    taken_completed -= 1;
                }
                if op.is_write {
                    vals[op.slot as usize] = done.restore;
                }
                order.pop();
            }
        }
    }
    witness
}

/// Re-enters [`drive_search`] at the success configuration a previous **plain**
/// (unsharded) witness search over a prefix of `sub` left frozen in `scratch`,
/// instead of re-deriving the whole DFS trajectory from the empty configuration.
///
/// Correctness (the incremental session's invalidation rule — see
/// [`crate::incremental`]): when every op added since the freeze sits at the end of
/// the register's invocation-ordered op list with an invocation strictly after every
/// frozen completed op's response, no added op is a Wing–Gong candidate at any
/// configuration the frozen search visited *before* its success — the op's
/// predecessor set contains every frozen completed op, so viability implies the
/// all-completed-taken configuration where that search stopped. A from-scratch
/// search of the grown subproblem therefore replays the frozen trajectory verbatim
/// and first diverges at the frozen success configuration; re-entering there with
/// `entering = true` reproduces the remainder bit-exactly, counters included. (The
/// frozen success configuration was never memo-inserted — success breaks out before
/// the insert, and no earlier configuration shares its taken set — so re-running its
/// entry bookkeeping, memo insert included, is exactly what the from-scratch search
/// does on arrival.) The caller must additionally ensure the grown subproblem keeps
/// the frozen taken-word count and [`memo_size_class`] and stays unsharded,
/// otherwise the frozen table's geometry no longer matches a from-scratch run.
///
/// On entry `stats` must hold the frozen search's final statistics and `budget` its
/// remaining private budget; both are rewound by one state here so the re-entered
/// configuration's entry bookkeeping counts once, not twice. `taken_completed` is the
/// number of completed ops in the frozen order — the caller maintains it across
/// pending-op completions so resumption costs O(1) bookkeeping, not an O(order)
/// recount. Memo counters are *assigned* (not drained) at the end: the live table's
/// probe count and arena already include the frozen prefix.
pub(crate) fn resume_witness(
    sub: &SubProblem,
    taken_completed: usize,
    budget: &mut u64,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Option<Vec<u32>> {
    let n = sub.ops.len();
    debug_assert_eq!(scratch.taken.len(), words_for(n));
    let SearchScratch {
        taken,
        vals,
        order,
        stack,
        memo,
    } = scratch;
    debug_assert!(!stack.is_empty(), "no frozen search to resume");
    debug_assert_eq!(
        taken_completed,
        order
            .iter()
            .filter(|&&i| sub.ops[i as usize].completed)
            .count(),
        "caller-maintained taken_completed diverged from the frozen order"
    );
    // The frozen root scanned up to the old op count; the appended suffix extends
    // its candidate range. (The frozen root always spanned the full old range:
    // resumption is gated on the subproblem being unsharded.) Child frames carry
    // the [`UNBOUNDED`] sentinel and need no fixup.
    stack[0].end = n as u32;
    // Rewind one state: re-entering the frozen configuration re-runs entry
    // bookkeeping the frozen search already accounted for.
    stats.states_explored -= 1;
    *budget += 1;
    let witness = drive_search(
        sub,
        budget,
        stats,
        taken,
        vals,
        order,
        stack,
        memo,
        taken_completed,
        true,
    );
    stats.memo.probes = scratch.memo.probes;
    stats.memo.arena_high_water = stats
        .memo
        .arena_high_water
        .max(scratch.memo.arena.len() as u64);
    // Assign, not merge: the live table's sketch spans the frozen prefix *and* the
    // continuation — exactly the fresh-insert set of a from-scratch search.
    stats.sketch = scratch.memo.hll;
    witness
}

// ---------------------------------------------------------------------------
// Within-register sharding
// ---------------------------------------------------------------------------

/// Default root-frontier size at which a single register's witness search is split
/// into shards (see the module docs). The default is deliberately above the op count
/// of the differential corpora and the tracked small-history workloads, so their
/// search statistics are untouched; lower it per session via
/// [`crate::CheckerBuilder::split_threshold`] (or [`Engine::with_split_threshold`])
/// for histories with genuinely wide open concurrency.
pub const DEFAULT_SPLIT_THRESHOLD: u32 = 24;

/// Number of shards a split search is partitioned into. Fixed: shard geometry must
/// depend only on the subproblem and the threshold — never on the pool width — or
/// results would differ across thread counts.
const SPLIT_SHARDS: usize = 8;

/// Computes the shard ranges of `sub`'s root candidate scan, or `None` when the root
/// frontier is below `threshold` (or too small to split at all). The frontier is the
/// set of Wing–Gong candidates at the empty configuration: real-time-minimal ops
/// whose effect is consistent with the initial register state. Candidates are
/// chunked into [`SPLIT_SHARDS`] contiguous groups; each range spans from its
/// group's first candidate (the first range from op 0) to the next group's first,
/// so the ranges tile `0..n` and each shard's root scan sees exactly its group.
pub(crate) fn shard_ranges(sub: &SubProblem, threshold: u32) -> Option<Vec<std::ops::Range<u32>>> {
    let n = sub.ops.len();
    let threshold = (threshold as usize).max(2);
    if n < threshold {
        return None; // the frontier is at most n ops — skip the scan entirely
    }
    // Local ops are in invocation order, so predecessor sets are monotone along the
    // list: the first op with a nonzero preds row ends the real-time-minimal prefix,
    // and everything after it is non-minimal too. The frontier scan therefore costs
    // O(frontier), not O(n) — the common "too narrow to split" outcome on long
    // sequential-ish histories rejects after a handful of ops, allocation-free.
    let minimal_prefix = (0..n)
        .take_while(|&i| {
            sub.preds[i * sub.words..(i + 1) * sub.words]
                .iter()
                .all(|&w| w == 0)
        })
        .count();
    let is_root_candidate = |i: &usize| {
        let op = &sub.ops[*i];
        op.is_write || op.value == sub.init_id
    };
    let count = (0..minimal_prefix).filter(is_root_candidate).count();
    if count < threshold {
        return None;
    }
    let candidates: Vec<u32> = (0..minimal_prefix)
        .filter(is_root_candidate)
        .map(|i| i as u32)
        .collect();
    let chunk = candidates
        .len()
        .div_ceil(SPLIT_SHARDS.min(candidates.len()));
    let mut ranges: Vec<std::ops::Range<u32>> = Vec::new();
    let mut lo = 0u32;
    for group in candidates.chunks(chunk).skip(1) {
        ranges.push(lo..group[0]);
        lo = group[0];
    }
    ranges.push(lo..n as u32);
    Some(ranges)
}

/// The canonical witness search of one register's subproblem: a plain DFS below the
/// split threshold, the sharded sweep — shards in ascending range order, each with a
/// fresh memo table, sharing `budget`, stopping at the first witness — above it.
/// This *is* the sequential semantics; the parallel paths replay it.
pub(crate) fn search_register(
    sub: &SubProblem,
    split_threshold: u32,
    budget: &mut u64,
    stats: &mut SearchStats,
    scratch: &mut SearchScratch,
) -> Option<Vec<u32>> {
    match shard_ranges(sub, split_threshold) {
        None => search_witness(sub, budget, stats, scratch),
        Some(ranges) => {
            for range in ranges {
                let witness = search_witness_range(sub, range, budget, stats, scratch);
                if witness.is_some() {
                    return witness;
                }
                if stats.limit_hit {
                    return None;
                }
            }
            None
        }
    }
}

/// The k-way witness merge behind [`Engine::check`]'s multi-register tail, as a free
/// function over global op indices so the incremental session can merge without an
/// [`Engine`]: `times(g)` returns the op's `(invocation, response)` pair, the
/// response as a raw tick with pending ops mapped to `u64::MAX`. See
/// [`Engine::check`] for why the merge always succeeds on well-formed inputs.
///
/// A register's head op is *ready* when no unemitted op responded before it was
/// invoked (checked in O(k) via suffix minima of response times); among ready heads
/// the earliest invocation wins, ties to the lowest register index.
pub(crate) fn merge_witness_orders(
    per_register_orders: &[Vec<usize>],
    times: impl Fn(usize) -> (Time, u64),
) -> Option<Vec<usize>> {
    let k = per_register_orders.len();
    let total: usize = per_register_orders.iter().map(Vec::len).sum();
    // suffix_min_resp[r][p] = earliest response among orders[r][p..], pending ops
    // counting as never-responding.
    let suffix_min_resp: Vec<Vec<u64>> = per_register_orders
        .iter()
        .map(|order| {
            let mut mins = vec![u64::MAX; order.len() + 1];
            for p in (0..order.len()).rev() {
                mins[p] = mins[p + 1].min(times(order[p]).1);
            }
            mins
        })
        .collect();
    let mut pos = vec![0usize; k];
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<(Time, usize)> = None;
        'regs: for (r, order) in per_register_orders.iter().enumerate() {
            let Some(&head) = order.get(pos[r]) else {
                continue;
            };
            let inv = times(head).0;
            for (r2, mins) in suffix_min_resp.iter().enumerate() {
                // Skip the head itself when scanning its own register's suffix.
                if mins[pos[r2] + usize::from(r2 == r)] < inv.0 {
                    continue 'regs;
                }
            }
            if best.is_none_or(|(b, _)| inv < b) {
                best = Some((inv, r));
            }
        }
        let (_, r) = best?;
        merged.push(per_register_orders[r][pos[r]]);
        pos[r] += 1;
    }
    Some(merged)
}

/// One step outcome of a resumable enumeration walk.
#[derive(Debug)]
enum WalkStep {
    /// The next linearization order, as indices local to the walked subproblem
    /// ([`OrderWalk`]) or global op indices ([`ProductWalk`]).
    Order(Vec<u32>),
    /// The walk's node count exceeded the cap it was given; the walk is poisoned.
    CapExceeded,
    /// Every order has been emitted.
    Done,
}

/// Resumable depth-first enumeration of **every** linearization order of one
/// subproblem, recording an order at each node where all completed ops are linearized
/// — the same node set (and the same pre-order emission sequence) as the original
/// recursive enumerator. Each [`OrderWalk::next_order`] call runs the DFS exactly
/// until the next order is found, so a caller that stops early pays only for the
/// prefix of the walk it consumed — this is the engine of the lazy
/// [`Linearizations`] iterator.
///
/// The apply/undo frame bookkeeping mirrors [`search_witness`]; keep the two in sync.
#[derive(Debug)]
struct OrderWalk {
    taken: Vec<u64>,
    vals: Vec<u32>,
    taken_completed: usize,
    order: Vec<u32>,
    stack: Vec<Frame>,
    entering: bool,
    /// Nodes visited so far (monotone across `next_order` calls).
    nodes: u64,
}

impl OrderWalk {
    fn new(sub: &SubProblem) -> Self {
        let n = sub.ops.len();
        OrderWalk {
            taken: vec![0u64; words_for(n)],
            vals: vec![sub.init_id; sub.slots],
            taken_completed: 0,
            order: Vec::with_capacity(n),
            stack: vec![Frame {
                creator: NO_OP,
                restore: 0,
                scan: 0,
                end: n as u32,
            }],
            entering: true,
            nodes: 0,
        }
    }

    /// Resumes the DFS until the next linearization order is recorded. Visiting more
    /// than `node_cap` nodes in total aborts with [`WalkStep::CapExceeded`].
    fn next_order(&mut self, sub: &SubProblem, node_cap: u64) -> WalkStep {
        let n = sub.ops.len();
        while let Some(frame) = self.stack.last_mut() {
            if self.entering {
                self.entering = false;
                self.nodes += 1;
                if self.nodes > node_cap {
                    return WalkStep::CapExceeded;
                }
                if self.taken_completed == sub.completed {
                    // Emit and resume from this frame's candidate scan on the next
                    // call: enumeration keeps exploring past a recorded order (orders
                    // that additionally linearize pending writes are distinct and
                    // also valid).
                    return WalkStep::Order(self.order.clone());
                }
            }
            let mut advanced = false;
            let mut i = frame.scan as usize;
            while i < n {
                if sub.is_candidate(i, &self.taken, &self.vals) {
                    frame.scan = (i + 1) as u32;
                    let op = sub.ops[i];
                    let restore = self.vals[op.slot as usize];
                    self.taken[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                    if op.completed {
                        self.taken_completed += 1;
                    }
                    if op.is_write {
                        self.vals[op.slot as usize] = op.value;
                    }
                    self.order.push(i as u32);
                    self.stack.push(Frame {
                        creator: i as u32,
                        restore,
                        scan: 0,
                        end: n as u32,
                    });
                    self.entering = true;
                    advanced = true;
                    break;
                }
                i += 1;
            }
            if !advanced {
                let done = *self.stack.last().unwrap();
                self.stack.pop();
                if done.creator != NO_OP {
                    let c = done.creator as usize;
                    let op = sub.ops[c];
                    self.taken[c / WORD_BITS] &= !(1u64 << (c % WORD_BITS));
                    if op.completed {
                        self.taken_completed -= 1;
                    }
                    if op.is_write {
                        self.vals[op.slot as usize] = done.restore;
                    }
                    self.order.pop();
                }
            }
        }
        WalkStep::Done
    }
}

/// Eagerly drains an [`OrderWalk`]: every linearization order of `sub`, plus the
/// number of nodes visited, or `Err(nodes)` if `work_limit` nodes are exceeded. This
/// is the per-register discovery stage of multi-register enumeration (which needs the
/// complete per-register order sets to build tries).
fn enumerate_all_orders(sub: &SubProblem, work_limit: u64) -> Result<(Vec<Vec<u32>>, u64), u64> {
    let mut walk = OrderWalk::new(sub);
    let mut results = Vec::new();
    loop {
        match walk.next_order(sub, work_limit) {
            WalkStep::Order(order) => results.push(order),
            WalkStep::CapExceeded => return Err(walk.nodes),
            WalkStep::Done => return Ok((results, walk.nodes)),
        }
    }
}

// ---------------------------------------------------------------------------
// Lazy interleaving product (multi-register enumeration)
// ---------------------------------------------------------------------------

/// Prefix trie over one register's linearization orders, keyed by **global** op
/// indices. `children[node]` lists `(global op, child node)` in ascending op order —
/// guaranteed by inserting the orders in the DFS pre-order [`enumerate_orders`] emits
/// them in — and `accepting[node]` marks paths that are themselves complete
/// linearizations of the register (all its completed ops taken).
#[derive(Debug)]
struct OrderTrie {
    children: Vec<Vec<(u32, u32)>>,
    accepting: Vec<bool>,
}

impl OrderTrie {
    fn build(sub: &SubProblem, orders: &[Vec<u32>]) -> OrderTrie {
        let mut trie = OrderTrie {
            children: vec![Vec::new()],
            accepting: vec![false],
        };
        for order in orders {
            let mut node = 0usize;
            for &local in order {
                let global = sub.ops[local as usize].global;
                // Pre-order emission means the edge being extended, if present, is the
                // most recently added child; scan from the back.
                let found = trie.children[node]
                    .iter()
                    .rev()
                    .find(|&&(op, _)| op == global)
                    .map(|&(_, child)| child as usize);
                node = match found {
                    Some(child) => child,
                    None => {
                        let child = trie.children.len();
                        trie.children[node].push((global, child as u32));
                        trie.children.push(Vec::new());
                        trie.accepting.push(false);
                        child
                    }
                };
            }
            trie.accepting[node] = true;
        }
        trie
    }
}

/// A frame of the product DFS: the register that advanced to enter this frame, the
/// trie node it came from, the op applied, and the resume point of the candidate scan.
#[derive(Debug, Clone, Copy)]
struct ProductFrame {
    reg: u32,
    prev_node: u32,
    op: u32,
    scan: u32,
}

/// Resumable DFS over the product of the per-register tries: every interleaving of
/// the per-register linearizations that respects the global real-time relation of the
/// joint subproblem — which is exactly the set of joint linearization orders — in
/// exactly the order the joint DFS emits them (candidates scanned in ascending global
/// op index, results recorded pre-order).
///
/// "Lazy" in the sense that the product is never materialized: each
/// [`ProductWalk::next_order`] call runs exactly until the next order, and the walk
/// only ever visits prefixes of **valid** per-register linearizations, skipping the
/// state-inconsistent dead ends the joint search would wade through.
#[derive(Debug)]
struct ProductWalk {
    taken: Vec<u64>,
    node_at: Vec<u32>,
    accepting: usize,
    order: Vec<u32>,
    stack: Vec<ProductFrame>,
    entering: bool,
    /// Nodes visited so far (monotone across `next_order` calls).
    nodes: u64,
}

impl ProductWalk {
    fn new(joint: &SubProblem, tries: &[OrderTrie]) -> Self {
        ProductWalk {
            taken: vec![0u64; joint.words],
            node_at: vec![0; tries.len()],
            accepting: tries.iter().filter(|t| t.accepting[0]).count(),
            order: Vec::new(),
            stack: vec![ProductFrame {
                reg: u32::MAX,
                prev_node: 0,
                op: NO_OP,
                scan: 0,
            }],
            entering: true,
            nodes: 0,
        }
    }

    /// Resumes the product DFS until the next interleaving is recorded (returned as
    /// global op indices). Visiting more than `node_cap` product nodes in total
    /// aborts with [`WalkStep::CapExceeded`].
    fn next_order(&mut self, joint: &SubProblem, tries: &[OrderTrie], node_cap: u64) -> WalkStep {
        let registers = tries.len();
        while let Some(frame) = self.stack.last_mut() {
            if self.entering {
                self.entering = false;
                self.nodes += 1;
                if self.nodes > node_cap {
                    return WalkStep::CapExceeded;
                }
                if self.accepting == registers {
                    // Emit; the next call resumes from this frame's candidate scan.
                    return WalkStep::Order(self.order.clone());
                }
            }
            // The next op is the minimal global index >= frame.scan over every
            // register's currently reachable trie children whose real-time
            // predecessors are all taken — the same candidate the joint DFS scan
            // would find next.
            let mut best: Option<(u32, u32, u32)> = None;
            for (r, trie) in tries.iter().enumerate() {
                for &(global, child) in &trie.children[self.node_at[r] as usize] {
                    if global < frame.scan {
                        continue;
                    }
                    if best.is_some_and(|(bg, _, _)| global >= bg) {
                        break; // children ascend; nothing better in this register
                    }
                    if joint.preds_satisfied(global as usize, &self.taken) {
                        best = Some((global, r as u32, child));
                        break; // this register's minimal candidate
                    }
                }
            }
            match best {
                Some((global, reg, child)) => {
                    frame.scan = global + 1;
                    let g = global as usize;
                    self.taken[g / WORD_BITS] |= 1u64 << (g % WORD_BITS);
                    let prev_node = self.node_at[reg as usize];
                    self.node_at[reg as usize] = child;
                    let trie = &tries[reg as usize];
                    match (
                        trie.accepting[prev_node as usize],
                        trie.accepting[child as usize],
                    ) {
                        (false, true) => self.accepting += 1,
                        (true, false) => self.accepting -= 1,
                        _ => {}
                    }
                    self.order.push(global);
                    self.stack.push(ProductFrame {
                        reg,
                        prev_node,
                        op: global,
                        scan: 0,
                    });
                    self.entering = true;
                }
                None => {
                    let done = self.stack.pop().expect("non-empty stack");
                    if done.op != NO_OP {
                        let g = done.op as usize;
                        self.taken[g / WORD_BITS] &= !(1u64 << (g % WORD_BITS));
                        let reg = done.reg as usize;
                        let cur = self.node_at[reg];
                        self.node_at[reg] = done.prev_node;
                        let trie = &tries[reg];
                        match (
                            trie.accepting[cur as usize],
                            trie.accepting[done.prev_node as usize],
                        ) {
                            (true, false) => self.accepting -= 1,
                            (false, true) => self.accepting += 1,
                            _ => {}
                        }
                        self.order.pop();
                    }
                }
            }
        }
        WalkStep::Done
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Outcome of [`Engine::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// A witness linearization as indices into [`Engine::ops`], if one exists.
    pub order: Option<Vec<usize>>,
    /// Search nodes visited across all per-register sub-searches.
    pub states_explored: u64,
    /// Nodes pruned by memoization.
    pub states_memoized: u64,
    /// Memo-table counters of the check (probes, hits, arena high-water).
    pub memo: MemoStats,
    /// HLL sketch of the distinct configurations this check memoized (see
    /// [`StateSketch`]); deterministic like every other statistic, and mergeable
    /// across checks by a long-lived aggregator.
    pub sketch: StateSketch,
    /// `true` if the state budget ran out before the search finished; a missing
    /// witness is then inconclusive.
    pub limit_hit: bool,
}

/// Error returned when enumeration exceeds its work cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationLimitExceeded {
    /// Nodes visited before giving up.
    pub nodes_visited: u64,
}

impl std::fmt::Display for EnumerationLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "linearization enumeration exceeded its work cap after {} search nodes",
            self.nodes_visited
        )
    }
}

impl std::error::Error for EnumerationLimitExceeded {}

/// A prepared linearizability search over one history: values interned, precedence
/// precomputed, operations partitioned per register.
///
/// Build it once per history with [`Engine::new`], then run [`Engine::check`] (witness
/// search with per-register composition) or [`Engine::enumerate`] (joint enumeration of
/// all linearizations) any number of times.
#[derive(Debug)]
pub struct Engine<'a, V> {
    /// The relevant operations (completed, or pending writes), in history order.
    ops: Vec<&'a Operation<V>>,
    /// Per-register member lists (indices into `ops`), in ascending register order.
    members: Vec<Vec<u32>>,
    /// The registers appearing in the history, ascending.
    registers: Vec<RegisterId>,
    values: ValueInterner<'a, V>,
    /// Root-frontier size at which a single register's search is sharded.
    split_threshold: u32,
    /// Per-register subproblems, built lazily (`OnceLock` rather than `OnceCell` so
    /// a prepared engine can be shared across pool threads).
    per_register: OnceLock<Vec<SubProblem>>,
    /// Joint subproblem, built lazily and shared across `enumerate` calls.
    joint: OnceLock<SubProblem>,
}

impl<'a, V: RegisterValue> Engine<'a, V> {
    /// Prepares the engine for `history` with initial register value `init`.
    ///
    /// Pending reads are dropped here: a pending operation never precedes another
    /// operation, and an unreturned read constrains nothing.
    #[must_use]
    pub fn new(history: &'a History<V>, init: &'a V) -> Self {
        let ops: Vec<&Operation<V>> = history
            .operations()
            .iter()
            .filter(|o| o.is_complete() || o.is_write())
            .collect();

        // Intern every value appearing in the relevant ops, plus the initial value.
        let mut values = ValueInterner::new();
        let init_id = values.intern(init);
        debug_assert_eq!(init_id, 0, "the initial value is always id 0");
        for op in &ops {
            let v = match &op.kind {
                OpKind::Write(v) | OpKind::Read(Some(v)) => v,
                OpKind::Read(None) => unreachable!("pending reads are filtered out"),
            };
            values.intern(v);
        }

        // Partition by register, preserving history order within each register.
        let mut registers: Vec<RegisterId> = ops.iter().map(|o| o.register).collect();
        registers.sort_unstable();
        registers.dedup();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); registers.len()];
        for (g, op) in ops.iter().enumerate() {
            let slot = registers.binary_search(&op.register).unwrap();
            members[slot].push(g as u32);
        }
        Engine {
            ops,
            members,
            registers,
            values,
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            per_register: OnceLock::new(),
            joint: OnceLock::new(),
        }
    }

    /// Sets the root-frontier size at which a single register's witness search is
    /// split into shards (default [`DEFAULT_SPLIT_THRESHOLD`]). The threshold is part
    /// of the *canonical* search semantics: changing it may change which states are
    /// explored (and therefore the statistics — a sharded sweep can explore more
    /// states than the plain DFS, so a tight state budget that sufficed unsharded
    /// may run dry sharded, turning a conclusive check inconclusive), but a
    /// *conclusive* verdict and its witness are threshold-independent, and at a
    /// fixed threshold results stay bit-identical across thread counts.
    #[must_use]
    pub fn with_split_threshold(mut self, threshold: u32) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// The operations the engine searches over (completed ops and pending writes), in
    /// history order. Witness orders index into this slice.
    #[must_use]
    pub fn ops(&self) -> &[&'a Operation<V>] {
        &self.ops
    }

    /// Number of distinct values interned (including the initial value).
    #[must_use]
    pub fn interned_values(&self) -> usize {
        self.values.len()
    }

    /// The per-register subproblems, built on first use (enumeration-only callers
    /// never pay for them).
    fn per_register(&self) -> &[SubProblem] {
        self.per_register.get_or_init(|| {
            self.members
                .iter()
                .map(|member_ops| {
                    SubProblem::new(&self.ops, member_ops, |_| 0, |v| self.values.get(v), 0, 1)
                })
                .collect()
        })
    }

    /// The joint subproblem over every register (enumeration and the witness-merge
    /// fallback), built on first use and reused across calls.
    fn joint_subproblem(&self) -> &SubProblem {
        self.joint.get_or_init(|| {
            let all: Vec<u32> = (0..self.ops.len() as u32).collect();
            SubProblem::new(
                &self.ops,
                &all,
                |r| self.registers.binary_search(&r).unwrap() as u32,
                |v| self.values.get(v),
                0,
                self.registers.len().max(1),
            )
        })
    }

    /// Decides linearizability by checking each register's subhistory independently and
    /// merging the per-register witnesses into one global linearization order.
    ///
    /// `state_limit` bounds the total number of search nodes across all sub-searches
    /// (the same budget the original joint search applied to its single search tree).
    ///
    /// When the current rayon pool is wider than one thread and the history spans
    /// several registers, the sub-searches run fork-join in parallel; the outcome —
    /// verdict, witness, and statistics — is bit-identical to
    /// [`Engine::check_sequential`] at any thread count (see the module docs for how
    /// the budget replay guarantees this).
    #[must_use]
    pub fn check(&self, state_limit: u64) -> CheckOutcome {
        self.check_with(state_limit, default_scratch_pool())
    }

    /// [`Engine::check`] with caller-provided scratch arenas: every sub-search pops an
    /// arena from `scratch` (fork-join workers each take their own) and parks it back,
    /// so a long-lived pool amortizes search allocations across checks. Results are
    /// bit-identical to [`Engine::check`] — scratch is reset on every use.
    #[must_use]
    pub fn check_with(&self, state_limit: u64, scratch: &ScratchPool) -> CheckOutcome {
        let per_register = self.per_register();
        if rayon::current_num_threads() <= 1 {
            return self.check_sequential_with(state_limit, scratch);
        }
        if per_register.len() <= 1 {
            // One register: the only parallelism available is *within* its search —
            // speculative subtree splitting over the root candidate shards.
            let Some(ranges) = per_register
                .first()
                .and_then(|sub| shard_ranges(sub, self.split_threshold))
            else {
                return self.check_sequential_with(state_limit, scratch);
            };
            return self.check_sharded_single(&per_register[0], &ranges, state_limit, scratch);
        }
        // Fork-join: every sub-search runs with a private budget of the full limit.
        // (Copy the threshold out: capturing `self` would demand `V: Sync`.)
        let split_threshold = self.split_threshold;
        let results: Vec<(Option<Vec<u32>>, SearchStats)> = rayon::par_map(per_register, |sub| {
            let mut budget = state_limit;
            let mut stats = SearchStats::default();
            let mut arena = scratch.acquire();
            let order = search_register(sub, split_threshold, &mut budget, &mut stats, &mut arena);
            scratch.release(arena);
            (order, stats)
        });
        // Replay the sequential shared-budget accounting in register order. A
        // completed sub-search explores the same nodes whether its budget was the
        // full limit or the sequential remainder, as long as the remainder covered
        // it — so whenever the running total stays within the limit, the replayed
        // verdict, witness, and statistics are exactly the sequential ones. The
        // moment the sequential pass *would* have run dry (its truncation point
        // depends on the shared budget), rerun sequentially instead of guessing.
        let mut consumed = 0u64;
        let mut stats = SearchStats::default();
        let mut sub_orders: Vec<Vec<u32>> = Vec::with_capacity(results.len());
        for (order, sub_stats) in results {
            if sub_stats.limit_hit || consumed + sub_stats.states_explored > state_limit {
                return self.check_sequential_with(state_limit, scratch);
            }
            consumed += sub_stats.states_explored;
            stats.absorb(&sub_stats);
            match order {
                Some(order) => sub_orders.push(order),
                // First failing register: the sequential pass stops here too, with
                // exactly these statistics.
                None => {
                    return CheckOutcome {
                        order: None,
                        states_explored: stats.states_explored,
                        states_memoized: stats.states_memoized,
                        memo: stats.memo,
                        sketch: stats.sketch,
                        limit_hit: false,
                    }
                }
            }
        }
        let mut budget = state_limit - consumed;
        let mut arena = scratch.acquire();
        let outcome = self.finish_check(&sub_orders, &mut budget, &mut stats, &mut arena);
        scratch.release(arena);
        outcome
    }

    /// Speculative subtree splitting of a single register's search: every shard runs
    /// fork-join with a private full budget, then the sequential shard-order
    /// accounting is replayed — consume each shard's nodes in range order, stop at
    /// the first witness — so the outcome is bit-identical to
    /// [`Engine::check_sequential`] at any pool width. Shards past the sequential
    /// stopping point are wasted speculation (that is the trade), and a replay that
    /// detects the shared budget would have run dry mid-shard reruns sequentially.
    fn check_sharded_single(
        &self,
        sub: &SubProblem,
        ranges: &[std::ops::Range<u32>],
        state_limit: u64,
        scratch: &ScratchPool,
    ) -> CheckOutcome {
        let results: Vec<(Option<Vec<u32>>, SearchStats)> = rayon::par_map(ranges, |range| {
            let mut budget = state_limit;
            let mut stats = SearchStats::default();
            let mut arena = scratch.acquire();
            let order =
                search_witness_range(sub, range.clone(), &mut budget, &mut stats, &mut arena);
            scratch.release(arena);
            (order, stats)
        });
        let mut consumed = 0u64;
        let mut stats = SearchStats::default();
        for (order, sub_stats) in results {
            if sub_stats.limit_hit || consumed + sub_stats.states_explored > state_limit {
                return self.check_sequential_with(state_limit, scratch);
            }
            consumed += sub_stats.states_explored;
            stats.absorb(&sub_stats);
            if let Some(order) = order {
                let mut budget = state_limit - consumed;
                let mut arena = scratch.acquire();
                let outcome = self.finish_check(&[order], &mut budget, &mut stats, &mut arena);
                scratch.release(arena);
                return outcome;
            }
        }
        CheckOutcome {
            order: None,
            states_explored: stats.states_explored,
            states_memoized: stats.states_memoized,
            memo: stats.memo,
            sketch: stats.sketch,
            limit_hit: false,
        }
    }

    /// [`Engine::check`] pinned to the calling thread: per-register sub-searches run
    /// one after another sharing one budget. The parallel path is defined to be
    /// bit-identical to this one; the determinism suites diff the two.
    #[must_use]
    pub fn check_sequential(&self, state_limit: u64) -> CheckOutcome {
        self.check_sequential_with(state_limit, default_scratch_pool())
    }

    /// [`Engine::check_sequential`] with caller-provided scratch arenas (one arena is
    /// reused across all of the history's per-register sub-searches).
    #[must_use]
    pub fn check_sequential_with(&self, state_limit: u64, scratch: &ScratchPool) -> CheckOutcome {
        let mut budget = state_limit;
        let mut stats = SearchStats::default();
        let per_register = self.per_register();
        let mut sub_orders: Vec<Vec<u32>> = Vec::with_capacity(per_register.len());
        let mut arena = scratch.acquire();
        for sub in per_register {
            match search_register(
                sub,
                self.split_threshold,
                &mut budget,
                &mut stats,
                &mut arena,
            ) {
                Some(order) => sub_orders.push(order),
                None => {
                    scratch.release(arena);
                    return CheckOutcome {
                        order: None,
                        states_explored: stats.states_explored,
                        states_memoized: stats.states_memoized,
                        memo: stats.memo,
                        sketch: stats.sketch,
                        limit_hit: stats.limit_hit,
                    };
                }
            }
        }
        let outcome = self.finish_check(&sub_orders, &mut budget, &mut stats, &mut arena);
        scratch.release(arena);
        outcome
    }

    /// Shared tail of [`Engine::check_with`] and [`Engine::check_sequential_with`]
    /// once every register has produced a witness: maps the local witness orders to
    /// global op indices, merges them, and falls back to the joint search on the
    /// remaining budget if the merge ever fails.
    fn finish_check(
        &self,
        sub_orders: &[Vec<u32>],
        budget: &mut u64,
        stats: &mut SearchStats,
        arena: &mut SearchScratch,
    ) -> CheckOutcome {
        let per_register = self.per_register();
        let per_register_orders: Vec<Vec<usize>> = per_register
            .iter()
            .zip(sub_orders)
            .map(|(sub, order)| {
                order
                    .iter()
                    .map(|&i| sub.ops[i as usize].global as usize)
                    .collect()
            })
            .collect();
        // Single-register histories need no merge: the sub-witness is the witness.
        let merged = match per_register_orders.len() {
            0 => Some(Vec::new()),
            1 => Some(per_register_orders.into_iter().next().unwrap()),
            _ => self.merge_witnesses(&per_register_orders),
        };
        let order = match merged {
            Some(order) => Some(order),
            None => {
                // Compositionality guarantees the merge succeeds, so this branch
                // should be unreachable; if it ever fires (a regression in `precedes`
                // or the partitioning), fall back to the joint search on the remaining
                // budget rather than returning a wrong verdict. No debug_assert here:
                // the safety net must also work in debug builds.
                let joint = self.joint_subproblem();
                search_witness(joint, budget, stats, arena)
                    .map(|order| order.iter().map(|&i| i as usize).collect())
            }
        };
        CheckOutcome {
            order,
            states_explored: stats.states_explored,
            states_memoized: stats.states_memoized,
            memo: stats.memo,
            sketch: stats.sketch,
            limit_hit: stats.limit_hit,
        }
    }

    /// Checks a batch of histories, fanning them across the current rayon pool (one
    /// engine build + check per history). Results are in input order, and every entry
    /// is bit-identical to `Engine::new(history, init).check(state_limit)` — batching
    /// changes wall-clock time, never outcomes.
    ///
    /// This is the shape the differential suites, property tests, and adversary
    /// sweeps run: many independent small histories, where per-history parallelism
    /// cannot amortize the engine build but cross-history parallelism can.
    #[must_use]
    pub fn check_many(items: &[(&History<V>, &V)], state_limit: u64) -> Vec<CheckOutcome>
    where
        V: Sync,
    {
        rayon::par_map(items, |(history, init)| {
            Engine::new(history, init).check(state_limit)
        })
    }

    /// Merges per-register witness orders into one global order respecting both every
    /// witness order and the global real-time relation. Returns `None` if no such
    /// order exists (impossible for correct inputs; see [`Engine::check`]).
    ///
    /// This is a k-way pointer merge: a register's head op is *ready* when no
    /// unemitted op responded before it was invoked (checked in O(k) via suffix
    /// minima of response times), and among ready heads the earliest invocation wins,
    /// ties to the lowest register. Readiness of the head with the minimal unemitted
    /// response time is guaranteed, so the merge always progresses on well-formed
    /// witness orders — and it replaces the previous all-pairs `precedes` scan plus
    /// Kahn topological sort, which dominated multi-register check time.
    fn merge_witnesses(&self, per_register_orders: &[Vec<usize>]) -> Option<Vec<usize>> {
        merge_witness_orders(per_register_orders, |g| {
            let op = self.ops[g];
            (op.invoked_at, op.responded_at.map_or(u64::MAX, |t| t.0))
        })
    }

    /// Enumerates every linearization order of the history, up to `max_results`,
    /// visiting at most `work_limit` search nodes.
    ///
    /// Orders index into [`Engine::ops`]. The sequence of orders produced — values
    /// and emission order both — matches the original recursive joint enumerator
    /// exactly. This is the eager form of [`Linearizations`]: it drains the same
    /// streaming core until `max_results` orders exist, the space is exhausted, or
    /// the work cap trips.
    pub fn enumerate(
        &self,
        max_results: usize,
        work_limit: u64,
    ) -> Result<Vec<Vec<usize>>, EnumerationLimitExceeded> {
        let mut core = EnumCore::new(work_limit);
        let mut orders = Vec::new();
        while orders.len() < max_results {
            match core.next_order(self) {
                Some(Ok(order)) => orders.push(order),
                Some(Err(err)) => return Err(err),
                None => break,
            }
        }
        Ok(orders)
    }
}

// ---------------------------------------------------------------------------
// Streaming enumeration
// ---------------------------------------------------------------------------

/// Engine-independent state of a streaming enumeration: which stage the walk is in
/// plus its resumable DFS state. Kept separate from [`Linearizations`] (which owns the
/// engine) so the eager [`Engine::enumerate`] can drive the identical code path by
/// reference.
#[derive(Debug)]
enum EnumStage {
    /// Nothing pulled yet; the first pull picks the stage (and, for multi-register
    /// histories, runs per-register discovery).
    Unstarted,
    /// The joint DFS: single-register histories, and the fallback when per-register
    /// discovery blows the work cap. `node_cap` bounds the walk's own nodes;
    /// `prior_nodes` counts discovery nodes already spent before the fallback, so a
    /// work-cap error reports the true total.
    Joint {
        walk: OrderWalk,
        node_cap: u64,
        prior_nodes: u64,
    },
    /// The lazy interleaving product over per-register tries (multi-register).
    Product {
        tries: Vec<OrderTrie>,
        walk: ProductWalk,
        node_cap: u64,
        prior_nodes: u64,
    },
    /// Exhausted, or poisoned by a work-cap error; carries the final node count.
    Finished { nodes: u64 },
}

#[derive(Debug)]
struct EnumCore {
    work_limit: u64,
    stage: EnumStage,
}

impl EnumCore {
    fn new(work_limit: u64) -> Self {
        EnumCore {
            work_limit,
            stage: EnumStage::Unstarted,
        }
    }

    /// Total enumeration nodes visited so far (discovery plus walk); a finished or
    /// poisoned enumeration keeps reporting its final count.
    fn nodes_visited(&self) -> u64 {
        match &self.stage {
            EnumStage::Unstarted => 0,
            EnumStage::Finished { nodes } => *nodes,
            EnumStage::Joint {
                walk, prior_nodes, ..
            } => prior_nodes + walk.nodes,
            EnumStage::Product {
                walk, prior_nodes, ..
            } => prior_nodes + walk.nodes,
        }
    }

    /// Picks the stage on first pull. Multi-register histories run per-register
    /// discovery here: each register's full set of linearizations, folded into a
    /// prefix trie, with the shared work budget draining as we go. Discovery cannot
    /// stop early (the product needs every per-register order to know which
    /// interleavings exist), so a register whose own linearization space exceeds the
    /// budget falls back to the joint DFS — which *is* lazy and therefore still
    /// succeeds when the consumer wants only a few orders, exactly as the pre-product
    /// enumerator did. Total work stays within 2x the cap.
    fn start<V: RegisterValue>(&mut self, engine: &Engine<'_, V>) {
        if engine.registers.len() <= 1 {
            self.stage = EnumStage::Joint {
                walk: OrderWalk::new(engine.joint_subproblem()),
                node_cap: self.work_limit,
                prior_nodes: 0,
            };
            return;
        }
        let per_register = engine.per_register();
        let mut nodes_total = 0u64;
        let mut tries = Vec::with_capacity(per_register.len());
        for sub in per_register {
            match enumerate_all_orders(sub, self.work_limit.saturating_sub(nodes_total)) {
                Ok((orders, nodes)) => {
                    nodes_total += nodes;
                    tries.push(OrderTrie::build(sub, &orders));
                }
                Err(nodes) => {
                    self.stage = EnumStage::Joint {
                        walk: OrderWalk::new(engine.joint_subproblem()),
                        node_cap: self.work_limit,
                        prior_nodes: nodes_total + nodes,
                    };
                    return;
                }
            }
        }
        self.stage = EnumStage::Product {
            walk: ProductWalk::new(engine.joint_subproblem(), &tries),
            tries,
            node_cap: self.work_limit.saturating_sub(nodes_total),
            prior_nodes: nodes_total,
        };
    }

    /// Pulls the next linearization order (as indices into [`Engine::ops`]), running
    /// the underlying DFS exactly until it is found. Yields
    /// `Err(EnumerationLimitExceeded)` once — and then fuses — if the cumulative node
    /// count exceeds the work cap.
    fn next_order<V: RegisterValue>(
        &mut self,
        engine: &Engine<'_, V>,
    ) -> Option<Result<Vec<usize>, EnumerationLimitExceeded>> {
        if matches!(self.stage, EnumStage::Unstarted) {
            self.start(engine);
        }
        let step = match &mut self.stage {
            EnumStage::Unstarted => unreachable!("started above"),
            EnumStage::Finished { .. } => return None,
            EnumStage::Joint { walk, node_cap, .. } => {
                let joint = engine.joint_subproblem();
                match walk.next_order(joint, *node_cap) {
                    WalkStep::Order(order) => WalkStep::Order(
                        order
                            .iter()
                            .map(|&i| joint.ops[i as usize].global)
                            .collect(),
                    ),
                    other => other,
                }
            }
            EnumStage::Product {
                tries,
                walk,
                node_cap,
                ..
            } => walk.next_order(engine.joint_subproblem(), tries, *node_cap),
        };
        match step {
            WalkStep::Order(order) => Some(Ok(order.into_iter().map(|g| g as usize).collect())),
            WalkStep::CapExceeded => {
                let nodes_visited = self.nodes_visited();
                self.stage = EnumStage::Finished {
                    nodes: nodes_visited,
                };
                Some(Err(EnumerationLimitExceeded { nodes_visited }))
            }
            WalkStep::Done => {
                self.stage = EnumStage::Finished {
                    nodes: self.nodes_visited(),
                };
                None
            }
        }
    }
}

/// A lazy, work-capped iterator over **every** linearization of one history, in
/// exactly the emission order of the eager enumerator (and of the original recursive
/// joint DFS): create it with [`crate::Checker::linearizations`].
///
/// Each [`Iterator::next`] call resumes the underlying search exactly until the next
/// order is found, so `take(1)` (or dropping the iterator mid-way) pays only for the
/// prefix of the search it consumed — this is what lets existential checks like
/// [`crate::ExtensionFamily`] short-circuit instead of materializing a bounded batch
/// of orders per history. Items are `Ok(order)` (operation ids, in linearization
/// order) until either the space is exhausted (`None`) or the cumulative enumeration
/// work exceeds the iterator's cap, which yields one
/// `Err(`[`EnumerationLimitExceeded`]`)` and then fuses.
#[derive(Debug)]
pub struct Linearizations<'a, V> {
    history: &'a History<V>,
    engine: Engine<'a, V>,
    core: EnumCore,
}

impl<'a, V: RegisterValue> Linearizations<'a, V> {
    /// Prepares a streaming enumeration of `history` (initial value `init`, at most
    /// `work_limit` search nodes). No search work happens until the first pull.
    pub(crate) fn new(history: &'a History<V>, init: &'a V, work_limit: u64) -> Self {
        Linearizations {
            history,
            engine: Engine::new(history, init),
            core: EnumCore::new(work_limit),
        }
    }

    /// Enumeration nodes visited so far — per-register discovery plus the product (or
    /// joint) walk. This is the work counter the laziness tests pin: a consumer that
    /// stops early must observe strictly fewer nodes than a full drain.
    #[must_use]
    pub fn nodes_visited(&self) -> u64 {
        self.core.nodes_visited()
    }

    /// Materializes an order previously yielded by this iterator as a well-formed
    /// sequential history: operations appear in linearization order, with linearized
    /// pending operations given a synthetic response just past the history's horizon.
    ///
    /// # Panics
    ///
    /// Panics if `order` contains an id that does not occur in the history.
    #[must_use]
    pub fn materialize(&self, order: &[OpId]) -> SeqHistory<V> {
        let completion_time = self.history.max_time().next();
        let ops = order
            .iter()
            .map(|id| {
                let mut op = self
                    .history
                    .get(*id)
                    .expect("order ids come from this history")
                    .clone();
                if op.responded_at.is_none() {
                    op.responded_at = Some(completion_time);
                }
                op
            })
            .collect();
        SeqHistory::from_ops(ops)
    }
}

impl<V: RegisterValue> Iterator for Linearizations<'_, V> {
    type Item = Result<Vec<OpId>, EnumerationLimitExceeded>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.core.next_order(&self.engine)? {
            Ok(order) => Some(Ok(order.iter().map(|&g| self.engine.ops()[g].id).collect())),
            Err(err) => Some(Err(err)),
        }
    }
}

impl<V: RegisterValue> std::iter::FusedIterator for Linearizations<'_, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::ProcessId;

    const R0: RegisterId = RegisterId(0);
    const R1: RegisterId = RegisterId(1);

    #[test]
    fn sketch_registers_covers_and_merge_novel_agree() {
        let mut a = StateSketch::default();
        let mut b = StateSketch::default();
        for h in 0..64u64 {
            a.observe(h.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        b.observe(0xDEAD_BEEF_CAFE_F00D);
        // A fresh sketch never covers a non-empty one.
        assert!(!StateSketch::default().covers(&b));
        // covers is reflexive, and merge_novel reports exactly !covers.
        assert!(a.covers(&a));
        let covered = a.covers(&b);
        let mut merged = a;
        assert_eq!(merged.merge_novel(&b), !covered);
        // After merging, b is covered and a second merge is never novel.
        assert!(merged.covers(&b));
        assert!(!merged.merge_novel(&b));
        // registers() exposes exactly the merge state: element-wise max.
        for ((m, x), y) in merged
            .registers()
            .iter()
            .zip(a.registers())
            .zip(b.registers())
        {
            assert_eq!(*m, (*x).max(*y));
        }
    }

    #[test]
    fn interning_assigns_dense_ids() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R0, 5i64);
        b.write(ProcessId(0), R0, 5i64);
        b.write(ProcessId(0), R0, 9i64);
        b.read(ProcessId(1), R0, 9i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        // init (0), 5, 9 — the duplicate write and the read share existing ids.
        assert_eq!(engine.interned_values(), 3);
    }

    #[test]
    fn per_register_partitioning() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R0, 1i64);
        b.write(ProcessId(0), R1, 2i64);
        b.read(ProcessId(1), R0, 1i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let per_register = engine.per_register();
        assert_eq!(per_register.len(), 2);
        assert_eq!(per_register[0].ops.len(), 2);
        assert_eq!(per_register[1].ops.len(), 1);
    }

    #[test]
    fn check_finds_witness_and_merge_respects_real_time() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R0, 1i64);
        b.write(ProcessId(0), R1, 2i64);
        b.read(ProcessId(1), R0, 1i64);
        b.read(ProcessId(1), R1, 2i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let outcome = engine.check(1_000_000);
        let order = outcome.order.expect("linearizable");
        assert_eq!(order.len(), 4);
        // Real-time: every op here is sequential, so the merge must reproduce history
        // order exactly.
        let invs: Vec<_> = order.iter().map(|&i| engine.ops()[i].invoked_at).collect();
        let mut sorted = invs.clone();
        sorted.sort();
        assert_eq!(invs, sorted);
    }

    #[test]
    fn check_rejects_stale_read() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R0, 1i64);
        b.read(ProcessId(1), R0, 0i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        assert!(engine.check(1_000_000).order.is_none());
    }

    #[test]
    fn state_budget_is_shared_and_reported() {
        let mut b = HistoryBuilder::new();
        for i in 0..6 {
            let w = b.invoke_write(ProcessId(i), R0, i as i64 + 1);
            let _ = w; // all writes left pending: maximal concurrency
        }
        b.read(ProcessId(7), R0, 3i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let strict = engine.check(2);
        assert!(strict.limit_hit);
        assert!(strict.order.is_none());
        let relaxed = engine.check(1_000_000);
        assert!(!relaxed.limit_hit);
        assert!(relaxed.order.is_some());
    }

    #[test]
    fn enumerate_work_cap_fails_loudly() {
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..8)
            .map(|i| b.invoke_write(ProcessId(i), R0, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let err = engine.enumerate(usize::MAX, 50).unwrap_err();
        assert!(err.nodes_visited > 50);
        assert!(err.to_string().contains("work cap"));
    }

    #[test]
    fn parallel_check_is_bit_identical_to_sequential() {
        // A multi-register history with real concurrency; run the parallel path on
        // pools of width 2 and 4 and diff the entire outcome against the sequential
        // path — orders, statistics, flags, everything.
        let mut b = HistoryBuilder::new();
        for i in 0..3u64 {
            let w = b.invoke_write(ProcessId(i as usize), R0, i as i64 + 1);
            let _ = w;
            b.write(ProcessId(i as usize), R1, i as i64 + 10);
        }
        b.read(ProcessId(7), R0, 2i64);
        b.read(ProcessId(8), R1, 12i64);
        let h = b.build();
        let engine = Engine::new(&h, &0);
        for limit in [1u64, 3, 10, 1_000_000] {
            let sequential = engine.check_sequential(limit);
            for threads in [2usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let parallel = pool.install(|| engine.check(limit));
                assert_eq!(parallel, sequential, "threads={threads} limit={limit}");
            }
        }
    }

    #[test]
    fn check_many_matches_individual_checks() {
        let histories: Vec<_> = (0..6)
            .map(|seed| {
                let mut b = HistoryBuilder::new();
                b.write(ProcessId(0), R0, seed);
                b.write(ProcessId(0), R1, seed + 1);
                b.read(ProcessId(1), R0, if seed % 2 == 0 { seed } else { 99 });
                b.build()
            })
            .collect();
        let init = 0i64;
        let items: Vec<_> = histories.iter().map(|h| (h, &init)).collect();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let batch = pool.install(|| Engine::check_many(&items, 1_000_000));
            for (i, h) in histories.iter().enumerate() {
                let solo = Engine::new(h, &init).check_sequential(1_000_000);
                assert_eq!(batch[i], solo, "threads={threads} history={i}");
            }
        }
    }

    #[test]
    fn multi_register_enumeration_interleaves_lazily() {
        // Two registers, each with two concurrent completed writes: 2 orders per
        // register, interleaved 4-over-2 ways each => 2 * 2 * C(4,2) = 24 orders.
        let mut b = HistoryBuilder::new();
        let mut ids = Vec::new();
        for i in 0..2 {
            ids.push(b.invoke_write(ProcessId(i), R0, i as i64 + 1));
        }
        for i in 0..2 {
            ids.push(b.invoke_write(ProcessId(2 + i), R1, i as i64 + 10));
        }
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let all = engine.enumerate(usize::MAX, 1_000_000).unwrap();
        assert_eq!(all.len(), 24);
        // max_results cuts the product off early — lazily, without generating all 24.
        let three = engine.enumerate(3, 1_000_000).unwrap();
        assert_eq!(three, all[..3].to_vec());
    }

    #[test]
    fn multi_register_enumeration_work_cap_fails_loudly() {
        let mut b = HistoryBuilder::new();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(b.invoke_write(ProcessId(i), R0, i as i64 + 1));
        }
        for i in 0..4 {
            ids.push(b.invoke_write(ProcessId(4 + i), R1, i as i64 + 10));
        }
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let err = engine.enumerate(usize::MAX, 40).unwrap_err();
        assert!(err.nodes_visited > 40);
        assert!(engine.enumerate(usize::MAX, 10_000_000).is_ok());
    }

    #[test]
    fn small_max_results_on_a_huge_register_falls_back_to_the_joint_search() {
        // Two registers, eight mutually concurrent completed writes each: each
        // register alone has 8! = 40,320 linearizations, far past a 10,000-node
        // budget, so the product's per-register discovery stage cannot finish.
        // With a small max_results the joint DFS finds the first order in a handful
        // of nodes — the fallback must preserve that (this was an Ok -> Err
        // regression caught in review).
        let mut b = HistoryBuilder::new();
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(b.invoke_write(ProcessId(i), R0, i as i64 + 1));
        }
        for i in 0..8 {
            ids.push(b.invoke_write(ProcessId(8 + i), R1, i as i64 + 10));
        }
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let first = engine
            .enumerate(1, 10_000)
            .expect("joint fallback succeeds");
        assert_eq!(first.len(), 1);
        // The fallback emits the definitional (joint DFS) first order: ops in
        // ascending global index, since all sixteen writes are mutually concurrent.
        assert_eq!(first[0], (0..16).collect::<Vec<usize>>());
        // An over-budget request without a small cap still fails loudly, counting
        // both the discovery attempt and the joint rerun.
        let err = engine.enumerate(usize::MAX, 10_000).unwrap_err();
        assert!(err.nodes_visited > 10_000);
    }

    /// A linearizable single-register history of `chunks * 4` operations: each chunk
    /// is three mutually concurrent writes of distinct values plus a read that pins
    /// the chunk's *first* write last — so the search backtracks through the chunk's
    /// permutations (revisiting configurations: real memo hits) before finding the
    /// witness, while the overall history stays linearizable. With enough chunks the
    /// taken bitset spans several words, exercising the skip-compacted large-key
    /// path.
    fn chunked_write_history(chunks: usize) -> History<i64> {
        let mut b = HistoryBuilder::new();
        for k in 0..chunks as i64 {
            let ids: Vec<_> = (0..3)
                .map(|j| b.invoke_write(ProcessId(j), R0, 3 * k + j as i64))
                .collect();
            for id in ids {
                b.respond_write(id);
            }
            b.read(ProcessId(3), R0, 3 * k);
        }
        b.build()
    }

    /// Reconstructs `(taken, vals)` from an arena key written by `write_key` — the
    /// inverse the compaction round-trip test pins.
    fn decode_key(key: &[u64], taken_words: usize, slots: usize) -> (Vec<u64>, Vec<u32>) {
        let (taken, rest) = if taken_words > 1 {
            let skip = key[0] as usize;
            let mut t = vec![u64::MAX; skip];
            t.extend_from_slice(&key[1..1 + taken_words - skip]);
            (t, &key[1 + taken_words - skip..])
        } else {
            (vec![key[0]], &key[1..])
        };
        let mut vals = Vec::new();
        for &w in rest {
            vals.push(w as u32);
            vals.push((w >> 32) as u32);
        }
        vals.truncate(slots);
        (taken, vals)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(512))]

        #[test]
        fn packed_keys_round_trip_and_never_collide(
            taken_words in 1usize..5,
            slots in 1usize..5,
            a_raw in proptest::collection::vec(
                proptest::prop_oneof![2 => proptest::prelude::Just(u64::MAX),
                                      1 => proptest::prelude::Just(0u64),
                                      2 => 0u64..1024],
                4,
            ),
            b_raw in proptest::collection::vec(
                proptest::prop_oneof![2 => proptest::prelude::Just(u64::MAX),
                                      1 => proptest::prelude::Just(0u64),
                                      2 => 0u64..1024],
                4,
            ),
            a_vals in proptest::collection::vec(0u32..6, 4),
            b_vals in proptest::collection::vec(0u32..6, 4),
        ) {
            let a = (&a_raw[..taken_words], &a_vals[..slots]);
            let b = (&b_raw[..taken_words], &b_vals[..slots]);
            let mut key_a = Vec::new();
            let mut key_b = Vec::new();
            write_key(&mut key_a, a.0, a.1, true);
            write_key(&mut key_b, b.0, b.1, true);
            // Round trip: the compacted key decodes back to the exact configuration.
            let (taken_back, vals_back) = decode_key(&key_a, taken_words, slots);
            proptest::prop_assert_eq!(&taken_back[..], a.0);
            proptest::prop_assert_eq!(&vals_back[..], a.1);
            // Injectivity: distinct configurations never collide as arena keys.
            proptest::prop_assert_eq!(a == b, key_a == key_b);
        }
    }

    #[test]
    fn compaction_never_changes_search_results() {
        // 120 ops => a two-word taken bitset, so compaction actually drops words on
        // the deep states. The compacted and uncompacted searches must agree on the
        // witness and on every state counter (only probe counts may differ — the key
        // bytes, and so the hash sequence, change).
        let h = chunked_write_history(30);
        let engine = Engine::new(&h, &0);
        let sub = &engine.per_register()[0];
        let mut outcomes = Vec::new();
        for compaction in [true, false] {
            let mut scratch = SearchScratch::default();
            scratch.memo.compaction_enabled = compaction;
            let mut budget = u64::MAX;
            let mut stats = SearchStats::default();
            let witness = search_witness(sub, &mut budget, &mut stats, &mut scratch);
            assert!(
                stats.memo.hits > 0,
                "the chunk reads must force memo traffic"
            );
            outcomes.push((witness, stats.states_explored, stats.states_memoized));
        }
        assert_eq!(outcomes[0], outcomes[1]);
    }

    #[test]
    fn warm_memo_arena_never_reallocates_across_a_batch() {
        // After one warm-up pass over the batch the arena and slot buffers have seen
        // their high-water sizes; a second pass through the same scratch must not
        // grow any physical buffer again.
        let histories: Vec<History<i64>> = (2..12).map(chunked_write_history).collect();
        let mut scratch = SearchScratch::default();
        let pass = |scratch: &mut SearchScratch| {
            for h in &histories {
                let engine = Engine::new(h, &0);
                for sub in engine.per_register() {
                    let mut budget = u64::MAX;
                    let mut stats = SearchStats::default();
                    let _ = search_register(
                        sub,
                        DEFAULT_SPLIT_THRESHOLD,
                        &mut budget,
                        &mut stats,
                        scratch,
                    );
                }
            }
        };
        pass(&mut scratch);
        let warm = scratch.memo.reallocations;
        assert!(warm > 0, "the cold pass must have allocated");
        pass(&mut scratch);
        assert_eq!(
            scratch.memo.reallocations, warm,
            "a warm arena re-allocated during the second pass"
        );
    }

    #[test]
    fn sharded_search_is_bit_identical_across_pool_widths() {
        // Six mutually concurrent completed writes plus a read pinning one of them:
        // a single-register search with a six-op root frontier. At threshold 2 the
        // canonical semantics shards it; the speculative parallel path must replay to
        // the exact sequential outcome (stats and memo counters included) at any
        // width, and sharding must not change the verdict or witness of the default
        // (unsharded) search.
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..6)
            .map(|i| b.invoke_write(ProcessId(i), R0, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        b.read(ProcessId(7), R0, 4i64);
        let h = b.build();
        let sharded = Engine::new(&h, &0).with_split_threshold(2);
        let unsharded = Engine::new(&h, &0);
        for limit in [1u64, 5, 40, 1_000_000] {
            let sequential = sharded.check_sequential(limit);
            for threads in [2usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let parallel = pool.install(|| sharded.check(limit));
                assert_eq!(parallel, sequential, "threads={threads} limit={limit}");
            }
        }
        let sharded_outcome = sharded.check_sequential(1_000_000);
        let unsharded_outcome = unsharded.check_sequential(1_000_000);
        assert_eq!(sharded_outcome.order, unsharded_outcome.order);
        assert!(sharded_outcome.order.is_some());
    }

    #[test]
    fn shard_ranges_tile_the_scan_and_ignore_narrow_frontiers() {
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..6)
            .map(|i| b.invoke_write(ProcessId(i), R0, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let engine = Engine::new(&h, &0);
        let sub = &engine.per_register()[0];
        assert!(shard_ranges(sub, DEFAULT_SPLIT_THRESHOLD).is_none());
        let ranges = shard_ranges(sub, 2).expect("six-op frontier splits at threshold 2");
        assert!(ranges.len() >= 2);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, sub.ops.len() as u32);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "ranges must tile the scan");
        }
    }

    #[test]
    fn fast_hasher_disperses_small_keys() {
        use std::hash::BuildHasher;
        let build = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for a in 0u64..64 {
            for b in 0u64..16 {
                let key: Box<[u64]> = vec![a, b].into_boxed_slice();
                seen.insert(build.hash_one(&key));
            }
        }
        assert_eq!(seen.len(), 64 * 16);
    }
}
