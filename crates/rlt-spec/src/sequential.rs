//! Sequential histories and the register sequential specification (Definition 2).

use crate::history::History;
use crate::ids::{OpId, RegisterId};
use crate::op::{OpKind, Operation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A sequential history: a total order of operations, each carrying its value.
///
/// This is the codomain of linearization functions (Definition 2). Every operation in a
/// sequential history is complete: pending operations from the concurrent history either
/// get a matching response added or are dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SeqHistory<V> {
    ops: Vec<Operation<V>>,
}

impl<V: Clone + Eq> SeqHistory<V> {
    /// Creates an empty sequential history.
    #[must_use]
    pub fn new() -> Self {
        SeqHistory { ops: Vec::new() }
    }

    /// Creates a sequential history from an ordered list of operations.
    ///
    /// # Panics
    ///
    /// Panics if any read operation has no return value (`OpKind::Read(None)`).
    #[must_use]
    pub fn from_ops(ops: Vec<Operation<V>>) -> Self {
        for op in &ops {
            if let OpKind::Read(None) = op.kind {
                panic!("sequential history contains a read without a return value");
            }
        }
        SeqHistory { ops }
    }

    /// The operations in linearization order.
    #[must_use]
    pub fn operations(&self) -> &[Operation<V>] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an operation at the end of the order.
    pub fn push(&mut self, op: Operation<V>) {
        self.ops.push(op);
    }

    /// The operation ids in linearization order.
    #[must_use]
    pub fn op_ids(&self) -> Vec<OpId> {
        self.ops.iter().map(|o| o.id).collect()
    }

    /// The subsequence of write operations, in linearization order.
    #[must_use]
    pub fn writes(&self) -> Vec<&Operation<V>> {
        self.ops.iter().filter(|o| o.is_write()).collect()
    }

    /// The ids of write operations in linearization order.
    #[must_use]
    pub fn write_ids(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.id)
            .collect()
    }

    /// Position of an operation in the linearization order, if present.
    #[must_use]
    pub fn position(&self, id: OpId) -> Option<usize> {
        self.ops.iter().position(|o| o.id == id)
    }

    /// Returns `true` if the full sequence of `self` is a prefix of the sequence of
    /// `other` (compared by operation id). This is property (P) of Definition 3.
    #[must_use]
    pub fn is_sequence_prefix_of(&self, other: &SeqHistory<V>) -> bool {
        let a = self.op_ids();
        let b = other.op_ids();
        a.len() <= b.len() && a == b[..a.len()]
    }

    /// Returns `true` if the sequence of *writes* of `self` is a prefix of the sequence
    /// of writes of `other` (compared by operation id). This is property (P) of
    /// Definition 4.
    #[must_use]
    pub fn is_write_prefix_of(&self, other: &SeqHistory<V>) -> bool {
        let a = self.write_ids();
        let b = other.write_ids();
        a.len() <= b.len() && a == b[..a.len()]
    }

    /// Checks property 3 of Definition 2 for every register in the history: each read
    /// returns the value of the last preceding write in the sequence, or `init` if no
    /// write precedes it.
    #[must_use]
    pub fn is_legal(&self, init: &V) -> bool {
        is_legal_register_sequence(&self.ops, init)
    }

    /// Checks property 2 of Definition 2: for every pair of operations in the sequence,
    /// if one precedes the other in the concurrent history `h` then their order in the
    /// sequence agrees.
    #[must_use]
    pub fn respects_real_time(&self, h: &History<V>) -> bool {
        for (i, a) in self.ops.iter().enumerate() {
            for b in &self.ops[i + 1..] {
                // b is after a in the sequence; so b must not precede a in real time.
                let (Some(ha), Some(hb)) = (h.get(a.id), h.get(b.id)) else {
                    continue;
                };
                if hb.precedes(ha) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks property 1 of Definition 2: the sequence contains every completed
    /// operation of `h`, and contains only operations of `h`.
    #[must_use]
    pub fn contains_all_completed(&self, h: &History<V>) -> bool {
        let ids: Vec<OpId> = self.op_ids();
        for op in h.completed() {
            if !ids.contains(&op.id) {
                return false;
            }
        }
        // No duplicates and no foreign operations.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != ids.len() {
            return false;
        }
        ids.iter().all(|id| h.get(*id).is_some())
    }

    /// Checks that the values carried by the sequence agree with those recorded in the
    /// history: a completed read must return in the sequence exactly the value it
    /// returned in `h`, and a write must write the same value.
    #[must_use]
    pub fn values_agree_with(&self, h: &History<V>) -> bool {
        for op in &self.ops {
            let Some(horig) = h.get(op.id) else {
                return false;
            };
            match (&op.kind, &horig.kind) {
                (OpKind::Write(a), OpKind::Write(b)) => {
                    if a != b {
                        return false;
                    }
                }
                (OpKind::Read(Some(a)), OpKind::Read(Some(b))) => {
                    if a != b {
                        return false;
                    }
                }
                // A pending read in the history may be completed with any value in the
                // sequence (a matching response is added), so no constraint.
                (OpKind::Read(Some(_)), OpKind::Read(None)) => {}
                _ => return false,
            }
        }
        true
    }

    /// Full check that `self` is a linearization of `h` with respect to the register
    /// type initialized to `init` (all three properties of Definition 2).
    #[must_use]
    pub fn is_linearization_of(&self, h: &History<V>, init: &V) -> bool {
        self.contains_all_completed(h)
            && self.respects_real_time(h)
            && self.values_agree_with(h)
            && self.is_legal(init)
    }
}

impl<V: fmt::Debug> fmt::Display for SeqHistory<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &op.kind {
                OpKind::Write(v) => write!(f, "{}:{}.w({:?})", op.process, op.register, v)?,
                OpKind::Read(v) => write!(f, "{}:{}.r→{:?}", op.process, op.register, v)?,
            }
        }
        write!(f, "⟩")
    }
}

/// Checks property 3 of Definition 2 over an ordered slice of operations: every read
/// returns the value written by the last write on the *same register* before it in the
/// sequence, or `init` if there is none.
#[must_use]
pub fn is_legal_register_sequence<V: Clone + Eq>(ops: &[Operation<V>], init: &V) -> bool {
    let mut state: BTreeMap<RegisterId, V> = BTreeMap::new();
    for op in ops {
        match &op.kind {
            OpKind::Write(v) => {
                state.insert(op.register, v.clone());
            }
            OpKind::Read(Some(v)) => {
                let current = state.get(&op.register).unwrap_or(init);
                if current != v {
                    return false;
                }
            }
            OpKind::Read(None) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{ProcessId, Time};

    fn op_w(id: u64, reg: usize, v: i64) -> Operation<i64> {
        Operation {
            id: OpId(id),
            process: ProcessId(0),
            register: RegisterId(reg),
            kind: OpKind::Write(v),
            invoked_at: Time(id * 2 + 1),
            responded_at: Some(Time(id * 2 + 2)),
        }
    }

    fn op_r(id: u64, reg: usize, v: i64) -> Operation<i64> {
        Operation {
            id: OpId(id),
            process: ProcessId(1),
            register: RegisterId(reg),
            kind: OpKind::Read(Some(v)),
            invoked_at: Time(id * 2 + 1),
            responded_at: Some(Time(id * 2 + 2)),
        }
    }

    #[test]
    fn legal_sequence_single_register() {
        let seq = vec![op_w(0, 0, 5), op_r(1, 0, 5), op_w(2, 0, 7), op_r(3, 0, 7)];
        assert!(is_legal_register_sequence(&seq, &0));
        let bad = vec![op_w(0, 0, 5), op_r(1, 0, 7)];
        assert!(!is_legal_register_sequence(&bad, &0));
    }

    #[test]
    fn legal_sequence_reads_initial_value() {
        let seq = vec![op_r(0, 0, 0), op_w(1, 0, 3), op_r(2, 0, 3)];
        assert!(is_legal_register_sequence(&seq, &0));
        let bad = vec![op_r(0, 0, 1)];
        assert!(!is_legal_register_sequence(&bad, &0));
    }

    #[test]
    fn legal_sequence_multi_register_is_independent() {
        let seq = vec![op_w(0, 0, 1), op_w(1, 1, 2), op_r(2, 0, 1), op_r(3, 1, 2)];
        assert!(is_legal_register_sequence(&seq, &0));
        let bad = vec![op_w(0, 0, 1), op_r(1, 1, 1)];
        assert!(!is_legal_register_sequence(&bad, &0));
    }

    #[test]
    fn pending_read_in_sequence_is_illegal() {
        let op: Operation<i64> = Operation {
            id: OpId(0),
            process: ProcessId(0),
            register: RegisterId(0),
            kind: OpKind::Read(None),
            invoked_at: Time(1),
            responded_at: Some(Time(2)),
        };
        assert!(!is_legal_register_sequence(&[op], &0));
    }

    #[test]
    fn write_prefix_and_sequence_prefix() {
        let a = SeqHistory::from_ops(vec![op_w(0, 0, 1), op_r(1, 0, 1)]);
        let b = SeqHistory::from_ops(vec![op_w(0, 0, 1), op_r(1, 0, 1), op_w(2, 0, 2)]);
        assert!(a.is_sequence_prefix_of(&b));
        assert!(a.is_write_prefix_of(&b));
        assert!(!b.is_sequence_prefix_of(&a));

        // Same writes, different read placement: still a write-prefix but not a
        // sequence-prefix.
        let c = SeqHistory::from_ops(vec![op_w(0, 0, 1), op_w(2, 0, 2), op_r(1, 0, 2)]);
        assert!(a.is_write_prefix_of(&c));
        assert!(!a.is_sequence_prefix_of(&c));
    }

    #[test]
    fn respects_real_time_detects_inversion() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(ProcessId(0), RegisterId(0), 1i64);
        let w2 = b.write(ProcessId(0), RegisterId(0), 2i64);
        let h = b.build();
        let o1 = h.get(w1).unwrap().clone();
        let o2 = h.get(w2).unwrap().clone();
        let good = SeqHistory::from_ops(vec![o1.clone(), o2.clone()]);
        let bad = SeqHistory::from_ops(vec![o2, o1]);
        assert!(good.respects_real_time(&h));
        assert!(!bad.respects_real_time(&h));
    }

    #[test]
    fn contains_all_completed_detects_missing_and_foreign() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(ProcessId(0), RegisterId(0), 1i64);
        let w2 = b.write(ProcessId(0), RegisterId(0), 2i64);
        let h = b.build();
        let o1 = h.get(w1).unwrap().clone();
        let o2 = h.get(w2).unwrap().clone();
        let missing = SeqHistory::from_ops(vec![o1.clone()]);
        assert!(!missing.contains_all_completed(&h));
        let full = SeqHistory::from_ops(vec![o1.clone(), o2.clone()]);
        assert!(full.contains_all_completed(&h));
        let foreign = SeqHistory::from_ops(vec![o1, o2, op_w(99, 0, 9)]);
        assert!(!foreign.contains_all_completed(&h));
    }

    #[test]
    fn values_agree_with_history() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(ProcessId(0), RegisterId(0), 1i64);
        let r1 = b.read(ProcessId(1), RegisterId(0), 1i64);
        let h = b.build();
        let mut o_w = h.get(w1).unwrap().clone();
        let o_r = h.get(r1).unwrap().clone();
        let seq = SeqHistory::from_ops(vec![o_w.clone(), o_r.clone()]);
        assert!(seq.values_agree_with(&h));
        // Tamper with the write value.
        o_w.kind = OpKind::Write(9);
        let tampered = SeqHistory::from_ops(vec![o_w, o_r]);
        assert!(!tampered.values_agree_with(&h));
    }

    #[test]
    fn full_linearization_check() {
        let mut b = HistoryBuilder::new();
        let w1 = b.write(ProcessId(0), RegisterId(0), 1i64);
        let r1 = b.read(ProcessId(1), RegisterId(0), 1i64);
        let h = b.build();
        let o_w = h.get(w1).unwrap().clone();
        let o_r = h.get(r1).unwrap().clone();
        let seq = SeqHistory::from_ops(vec![o_w.clone(), o_r.clone()]);
        assert!(seq.is_linearization_of(&h, &0));
        let wrong_order = SeqHistory::from_ops(vec![o_r, o_w]);
        assert!(!wrong_order.is_linearization_of(&h, &0));
    }

    #[test]
    #[should_panic(expected = "read without a return value")]
    fn from_ops_rejects_valueless_reads() {
        let op: Operation<i64> = Operation {
            id: OpId(0),
            process: ProcessId(0),
            register: RegisterId(0),
            kind: OpKind::Read(None),
            invoked_at: Time(1),
            responded_at: Some(Time(2)),
        };
        let _ = SeqHistory::from_ops(vec![op]);
    }

    #[test]
    fn position_and_push() {
        let mut seq = SeqHistory::new();
        assert!(seq.is_empty());
        seq.push(op_w(0, 0, 1));
        seq.push(op_r(1, 0, 1));
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.position(OpId(1)), Some(1));
        assert_eq!(seq.position(OpId(7)), None);
    }
}
