//! Operations: reads and writes with invocation/response intervals.

use crate::ids::{OpId, ProcessId, RegisterId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a register operation together with its payload.
///
/// * A `Write(v)` carries the value being written.
/// * A `Read(resp)` carries the value returned, or `None` while the read is pending
///   (or crashed before responding).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind<V> {
    /// A write of the given value.
    Write(V),
    /// A read; the payload is the returned value once the read has responded.
    Read(Option<V>),
}

impl<V> OpKind<V> {
    /// Returns `true` if this is a write operation.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write(_))
    }

    /// Returns `true` if this is a read operation.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, OpKind::Read(_))
    }
}

/// A single register operation spanning an interval of time (Definition 1).
///
/// `responded_at == None` means the operation is *pending* (its response does not
/// appear in the history).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation<V> {
    /// Unique identifier of the operation within its history.
    pub id: OpId,
    /// The process that issued the operation.
    pub process: ProcessId,
    /// The register the operation acts on.
    pub register: RegisterId,
    /// Whether the operation is a read or a write, with its payload.
    pub kind: OpKind<V>,
    /// The time of the operation's invocation event.
    pub invoked_at: Time,
    /// The time of the operation's response event, if any.
    pub responded_at: Option<Time>,
}

impl<V> Operation<V> {
    /// Returns `true` if the operation is complete (its response appears in the history).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.responded_at.is_some()
    }

    /// Returns `true` if the operation is pending (invoked but not responded).
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.responded_at.is_none()
    }

    /// Returns `true` if this is a write operation.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// Returns `true` if this is a read operation.
    #[must_use]
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// The value written, if this is a write.
    #[must_use]
    pub fn written_value(&self) -> Option<&V> {
        match &self.kind {
            OpKind::Write(v) => Some(v),
            OpKind::Read(_) => None,
        }
    }

    /// The value returned, if this is a completed read.
    #[must_use]
    pub fn read_value(&self) -> Option<&V> {
        match &self.kind {
            OpKind::Read(Some(v)) => Some(v),
            _ => None,
        }
    }

    /// Real-time precedence (Definition 1): `self` precedes `other` iff `self`'s
    /// response occurs before `other`'s invocation.
    #[must_use]
    pub fn precedes(&self, other: &Operation<V>) -> bool {
        match self.responded_at {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }

    /// Returns `true` if the two operations are concurrent (neither precedes the other).
    #[must_use]
    pub fn concurrent_with(&self, other: &Operation<V>) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }

    /// Returns `true` if the operation is *active* at time `t` in the sense of the
    /// paper's Definition 21: it has been invoked by `t` and has not responded before
    /// `t` (an operation that starts at `s` and completes at `f` is active for all
    /// `s <= t <= f`; pending operations are active forever after their invocation).
    #[must_use]
    pub fn is_active_at(&self, t: Time) -> bool {
        if self.invoked_at > t {
            return false;
        }
        match self.responded_at {
            Some(r) => t <= r,
            None => true,
        }
    }
}

impl<V: fmt::Debug> fmt::Display for Operation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let resp = match self.responded_at {
            Some(t) => format!("{t}"),
            None => "pending".to_string(),
        };
        match &self.kind {
            OpKind::Write(v) => write!(
                f,
                "{}[{} {}.write({:?}) @({},{})]",
                self.id, self.register, self.process, v, self.invoked_at, resp
            ),
            OpKind::Read(v) => write!(
                f,
                "{}[{} {}.read()->{:?} @({},{})]",
                self.id, self.register, self.process, v, self.invoked_at, resp
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(id: u64, inv: u64, resp: Option<u64>) -> Operation<i64> {
        Operation {
            id: OpId(id),
            process: ProcessId(0),
            register: RegisterId(0),
            kind: OpKind::Write(id as i64),
            invoked_at: Time(inv),
            responded_at: resp.map(Time),
        }
    }

    #[test]
    fn precedence_requires_response_before_invocation() {
        let a = write(1, 0, Some(5));
        let b = write(2, 6, Some(10));
        let c = write(3, 4, Some(12));
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!a.precedes(&c)); // c invoked at 4 < a's response at 5
        assert!(a.concurrent_with(&c));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn pending_operation_never_precedes() {
        let pending = write(1, 0, None);
        let later = write(2, 100, Some(101));
        assert!(!pending.precedes(&later));
        assert!(pending.concurrent_with(&later));
        assert!(pending.is_pending());
        assert!(!pending.is_complete());
    }

    #[test]
    fn active_interval_matches_definition_21() {
        let op = write(1, 3, Some(7));
        assert!(!op.is_active_at(Time(2)));
        assert!(op.is_active_at(Time(3)));
        assert!(op.is_active_at(Time(5)));
        assert!(op.is_active_at(Time(7)));
        assert!(!op.is_active_at(Time(8)));

        let pending = write(2, 4, None);
        assert!(pending.is_active_at(Time(4)));
        assert!(pending.is_active_at(Time(1_000_000)));
        assert!(!pending.is_active_at(Time(3)));
    }

    #[test]
    fn written_and_read_value_accessors() {
        let w = write(1, 0, Some(1));
        assert_eq!(w.written_value(), Some(&1));
        assert_eq!(w.read_value(), None);
        assert!(w.is_write());
        assert!(!w.is_read());

        let r: Operation<i64> = Operation {
            id: OpId(9),
            process: ProcessId(2),
            register: RegisterId(1),
            kind: OpKind::Read(Some(42)),
            invoked_at: Time(1),
            responded_at: Some(Time(2)),
        };
        assert_eq!(r.read_value(), Some(&42));
        assert_eq!(r.written_value(), None);
        assert!(r.is_read());
    }

    #[test]
    fn display_renders_both_kinds() {
        let w = write(1, 0, Some(1));
        assert!(w.to_string().contains("write"));
        let r: Operation<i64> = Operation {
            id: OpId(9),
            process: ProcessId(2),
            register: RegisterId(1),
            kind: OpKind::Read(None),
            invoked_at: Time(1),
            responded_at: None,
        };
        assert!(r.to_string().contains("pending"));
    }
}
