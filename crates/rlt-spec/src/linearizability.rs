//! A linearizability checker for (multi-)register histories.
//!
//! The checker performs a Wing–Gong style backtracking search specialized to the
//! register sequential specification: it tries to build a linearization order
//! incrementally, always picking a real-time-minimal remaining operation, simulating the
//! register state, and memoizing visited configurations. Pending writes may be
//! linearized or dropped; pending reads are dropped (they impose no constraint on any
//! other operation because a pending operation never *precedes* another operation).
//!
//! Since the engine rewrite, the search itself lives in [`crate::engine`]: values are
//! interned to dense ids, real-time precedence is precomputed into per-op bitsets, the
//! search is an explicit-stack DFS over packed `(taken, state)` memo keys, and — the
//! big structural win — multi-register histories are checked **per register** and the
//! per-register witnesses merged (registers are independent objects, so joint checking
//! equals per-register checking). This module keeps the public API and its original
//! semantics, delegating the heavy lifting.

use crate::engine::Engine;
pub use crate::engine::EnumerationLimitExceeded;
use crate::history::History;
use crate::op::Operation;
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;

/// Statistics and outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearizabilityReport<V> {
    /// A witness linearization if one exists.
    pub witness: Option<SeqHistory<V>>,
    /// Number of search states explored.
    pub states_explored: u64,
    /// Number of states pruned by memoization.
    pub states_memoized: u64,
    /// `true` if the search gave up because it hit the state-exploration cap; in that
    /// case a missing witness does **not** prove the history non-linearizable.
    pub limit_hit: bool,
}

impl<V> LinearizabilityReport<V> {
    /// Returns `true` if the history was found to be linearizable.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.witness.is_some()
    }
}

/// Default cap on the number of search states explored by [`check_linearizable`].
pub const DEFAULT_STATE_LIMIT: u64 = 20_000_000;

/// Default cap on search nodes visited by [`enumerate_linearizations`] before it
/// declares the input adversarial and panics (see [`try_enumerate_linearizations`] for
/// the non-panicking form).
pub const DEFAULT_ENUMERATION_WORK_LIMIT: u64 = 20_000_000;

/// Materializes an order of indices into `ops` as a [`SeqHistory`], giving linearized
/// pending operations a matching response so the sequential history is well-formed.
fn order_to_seq<V: RegisterValue>(
    history: &History<V>,
    ops: &[&Operation<V>],
    order: &[usize],
) -> SeqHistory<V> {
    let completion_time = history.max_time().next();
    let seq_ops = order
        .iter()
        .map(|&i| {
            let mut op = ops[i].clone();
            if op.responded_at.is_none() {
                op.responded_at = Some(completion_time);
            }
            op
        })
        .collect();
    SeqHistory::from_ops(seq_ops)
}

/// Checks whether `history` is linearizable with respect to the register type with
/// initial value `init`, returning a witness linearization if so.
///
/// Histories spanning several registers are decomposed: the register objects are
/// independent, so the engine checks each register's subhistory separately and merges
/// the witnesses — exponentially cheaper than the joint search, with the same verdict.
///
/// # Example
///
/// ```
/// use rlt_spec::prelude::*;
///
/// let mut b = HistoryBuilder::new();
/// let w = b.write(ProcessId(0), RegisterId(0), 1i64);
/// let r = b.read(ProcessId(1), RegisterId(0), 0i64); // reads stale value after write completed
/// let h = b.build();
/// assert!(check_linearizable(&h, &0i64).is_none());
/// let _ = (w, r);
/// ```
#[must_use]
pub fn check_linearizable<V: RegisterValue>(
    history: &History<V>,
    init: &V,
) -> Option<SeqHistory<V>> {
    check_linearizable_report(history, init, DEFAULT_STATE_LIMIT).witness
}

/// Like [`check_linearizable`] but returns search statistics and allows customizing the
/// state-exploration cap.
#[must_use]
pub fn check_linearizable_report<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    state_limit: u64,
) -> LinearizabilityReport<V> {
    let engine = Engine::new(history, init);
    let outcome = engine.check(state_limit);
    LinearizabilityReport {
        witness: outcome
            .order
            .map(|order| order_to_seq(history, engine.ops(), &order)),
        states_explored: outcome.states_explored,
        states_memoized: outcome.states_memoized,
        limit_hit: outcome.limit_hit,
    }
}

/// Checks a whole slice of histories against the same initial value, fanning the
/// checks across the current rayon pool (see [`Engine::check_many`]).
///
/// Reports come back in input order, and each one is bit-identical to what
/// [`check_linearizable_report`] returns for that history — at any thread count,
/// including 1 (where this degrades to a plain loop). This is the entry point the
/// differential suites and adversary sweeps use to turn "thousands of seeded
/// histories" from a latency problem into a throughput problem.
#[must_use]
pub fn check_linearizable_batch<V: RegisterValue + Send + Sync>(
    histories: &[History<V>],
    init: &V,
    state_limit: u64,
) -> Vec<LinearizabilityReport<V>> {
    rayon::par_map(histories, |history| {
        check_linearizable_report(history, init, state_limit)
    })
}

/// Enumerates **all** linearizations of `history` (up to the given limit on how many to
/// return). Used by the existential write-strong-linearizability checks of
/// [`crate::strong`], which must quantify over every possible linearization of a prefix.
///
/// # Panics
///
/// Panics if the search visits more than [`DEFAULT_ENUMERATION_WORK_LIMIT`] nodes —
/// adversarially concurrent histories fail loudly instead of hanging. Use
/// [`try_enumerate_linearizations`] to handle the cap as a value.
#[must_use]
pub fn enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
) -> Vec<SeqHistory<V>> {
    try_enumerate_linearizations(history, init, max_results, DEFAULT_ENUMERATION_WORK_LIMIT)
        .unwrap_or_else(|e| panic!("{e}; pass an explicit cap via try_enumerate_linearizations"))
}

/// Like [`enumerate_linearizations`] but with an explicit work cap: at most
/// `work_limit` search nodes are visited before the enumeration gives up with
/// [`EnumerationLimitExceeded`].
pub fn try_enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
    work_limit: u64,
) -> Result<Vec<SeqHistory<V>>, EnumerationLimitExceeded> {
    let engine = Engine::new(history, init);
    let orders = engine.enumerate(max_results, work_limit)?;
    Ok(orders
        .iter()
        .map(|order| order_to_seq(history, engine.ops(), order))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{OpId, ProcessId, RegisterId};

    const R: RegisterId = RegisterId(0);

    #[test]
    fn sequential_history_is_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        b.read(ProcessId(1), R, 2i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("should be linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn concurrent_write_allows_either_read_value() {
        // Write of 1 concurrent with a read: the read may return 0 or 1.
        for read_val in [0i64, 1i64] {
            let mut b = HistoryBuilder::new();
            let w = b.invoke_write(ProcessId(0), R, 1i64);
            let r = b.invoke_read(ProcessId(1), R);
            b.respond_read(r, read_val);
            b.respond_write(w);
            let h = b.build();
            assert!(
                check_linearizable(&h, &0).is_some(),
                "read of {read_val} should be allowed"
            );
        }
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Classic non-linearizable pattern: r1 reads the new value, then a later
        // (non-overlapping) r2 reads the old value, while the write has completed
        // before both reads... build it so the write completes first.
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(2), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn pending_write_can_explain_read() {
        // A write that never responds can still be linearized to justify a read.
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 7i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("pending write should justify read");
        assert_eq!(witness.writes().len(), 1);
    }

    #[test]
    fn pending_write_may_also_be_dropped() {
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_some());
    }

    #[test]
    fn multi_register_histories_are_checked_jointly() {
        let r1 = RegisterId(1);
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), r1, 2i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(1), r1, 2i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_some());

        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), r1, 1i64); // wrong register never written
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn multi_register_witness_respects_cross_register_real_time() {
        // Sequential chain alternating registers: the merged witness must interleave
        // the per-register linearizations in real-time order.
        let r1 = RegisterId(1);
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), r1, 10i64);
        b.write(ProcessId(0), R, 2i64);
        b.read(ProcessId(1), r1, 10i64);
        b.read(ProcessId(1), R, 2i64);
        b.write(ProcessId(0), r1, 20i64);
        b.read(ProcessId(1), r1, 20i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    fn the_paper_theorem6_pattern_is_linearizable() {
        // The key step of the Theorem 6 adversary: p0 writes [0,1], p1's write of [1,1]
        // overlaps all the players' reads; players read [0,1] then [1,1]. This must be
        // accepted by plain linearizability.
        use crate::value::Value;
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, Value::Pair(0, 1));
        let w1 = b.invoke_write(ProcessId(1), R, Value::Pair(1, 1));
        let r1a = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r1a, Value::Pair(0, 1));
        let r1b = b.invoke_read(ProcessId(2), R);
        b.respond_read(r1b, Value::Pair(1, 1));
        b.respond_write(w1);
        let h = b.build();
        assert!(check_linearizable(&h, &Value::Init).is_some());
    }

    #[test]
    fn report_exposes_statistics() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        let h = b.build();
        let report = check_linearizable_report(&h, &0, DEFAULT_STATE_LIMIT);
        assert!(report.is_linearizable());
        assert!(report.states_explored >= 1);
        assert!(!report.limit_hit);
    }

    #[test]
    fn state_limit_aborts_and_is_reported() {
        // Many concurrent pending writes plus a read: a tiny budget cannot finish.
        let mut b = HistoryBuilder::new();
        for i in 0..8 {
            let _ = b.invoke_write(ProcessId(i), R, i as i64 + 1);
        }
        b.read(ProcessId(9), R, 4i64);
        let h = b.build();
        let report = check_linearizable_report(&h, &0, 2);
        assert!(report.limit_hit);
        assert!(!report.is_linearizable());
    }

    #[test]
    fn enumerate_finds_both_orders_of_concurrent_writes() {
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        b.respond_write(w0);
        b.respond_write(w1);
        let h = b.build();
        let all = enumerate_linearizations(&h, &0, 100);
        // Both interleavings of the two concurrent writes must appear.
        let orders: Vec<Vec<OpId>> = all.iter().map(|s| s.write_ids()).collect();
        assert!(orders.contains(&vec![OpId(0), OpId(1)]));
        assert!(orders.contains(&vec![OpId(1), OpId(0)]));
    }

    #[test]
    fn enumerate_respects_real_time_order() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();
        let all = enumerate_linearizations(&h, &0, 100);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].write_ids(), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn try_enumerate_reports_work_limit() {
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..8)
            .map(|i| b.invoke_write(ProcessId(i), R, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let err = try_enumerate_linearizations(&h, &0, usize::MAX, 10).unwrap_err();
        assert!(err.nodes_visited > 10);
        // A generous cap succeeds on the same history.
        assert!(try_enumerate_linearizations(&h, &0, 10, 1_000_000).is_ok());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<i64> = History::new();
        let witness = check_linearizable(&h, &0).unwrap();
        assert!(witness.is_empty());
    }

    #[test]
    fn every_witness_is_a_valid_linearization() {
        // A moderately concurrent history; whatever witness comes back must satisfy the
        // full Definition 2 check.
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 10i64);
        let w1 = b.invoke_write(ProcessId(1), R, 20i64);
        let r0 = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r0, 20i64);
        let r1 = b.invoke_read(ProcessId(3), R);
        b.respond_write(w1);
        b.respond_read(r1, 20i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }
}
