//! A linearizability checker for (multi-)register histories.
//!
//! The checker performs a Wing–Gong style backtracking search specialized to the
//! register sequential specification: it tries to build a linearization order
//! incrementally, always picking a real-time-minimal remaining operation, simulating the
//! register state, and memoizing visited configurations. Pending writes may be
//! linearized or dropped; pending reads are dropped (they impose no constraint on any
//! other operation because a pending operation never *precedes* another operation).

use crate::history::History;
use crate::ids::RegisterId;
use crate::op::{OpKind, Operation};
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;
use std::collections::{BTreeMap, HashSet};

/// Statistics and outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearizabilityReport<V> {
    /// A witness linearization if one exists.
    pub witness: Option<SeqHistory<V>>,
    /// Number of search states explored.
    pub states_explored: u64,
    /// Number of states pruned by memoization.
    pub states_memoized: u64,
}

impl<V> LinearizabilityReport<V> {
    /// Returns `true` if the history was found to be linearizable.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.witness.is_some()
    }
}

struct Searcher<'a, V> {
    ops: Vec<&'a Operation<V>>,
    init: &'a V,
    visited: HashSet<(Vec<bool>, Vec<(RegisterId, V)>)>,
    states_explored: u64,
    states_memoized: u64,
    /// Hard cap on explored states so adversarially large histories fail loudly instead
    /// of hanging; test-scale histories stay far below it.
    state_limit: u64,
}

impl<'a, V: RegisterValue> Searcher<'a, V> {
    fn new(history: &'a History<V>, init: &'a V, state_limit: u64) -> Self {
        // Keep completed operations and pending writes; drop pending reads.
        let ops: Vec<&Operation<V>> = history
            .operations()
            .iter()
            .filter(|o| o.is_complete() || o.is_write())
            .collect();
        Searcher {
            ops,
            init,
            visited: HashSet::new(),
            states_explored: 0,
            states_memoized: 0,
            state_limit,
        }
    }

    fn search(
        &mut self,
        taken: &mut Vec<bool>,
        state: &mut BTreeMap<RegisterId, V>,
        order: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        self.states_explored += 1;
        if self.states_explored > self.state_limit {
            return None;
        }
        // Success: every completed operation has been linearized.
        if self
            .ops
            .iter()
            .enumerate()
            .all(|(i, o)| taken[i] || o.is_pending())
        {
            return Some(order.clone());
        }

        let memo_key = (
            taken.clone(),
            state
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<_>>(),
        );
        if !self.visited.insert(memo_key) {
            self.states_memoized += 1;
            return None;
        }

        // Candidate operations: not yet taken and real-time minimal among remaining.
        let candidate_idxs: Vec<usize> = (0..self.ops.len())
            .filter(|&i| !taken[i])
            .filter(|&i| {
                let oi = self.ops[i];
                (0..self.ops.len())
                    .filter(|&j| j != i && !taken[j])
                    .all(|j| !self.ops[j].precedes(oi))
            })
            .collect();

        for i in candidate_idxs {
            let op = self.ops[i];
            match &op.kind {
                OpKind::Write(v) => {
                    let prev = state.insert(op.register, v.clone());
                    taken[i] = true;
                    order.push(i);
                    if let Some(found) = self.search(taken, state, order) {
                        return Some(found);
                    }
                    order.pop();
                    taken[i] = false;
                    match prev {
                        Some(p) => {
                            state.insert(op.register, p);
                        }
                        None => {
                            state.remove(&op.register);
                        }
                    }
                }
                OpKind::Read(Some(v)) => {
                    let current = state.get(&op.register).unwrap_or(self.init);
                    if current == v {
                        taken[i] = true;
                        order.push(i);
                        if let Some(found) = self.search(taken, state, order) {
                            return Some(found);
                        }
                        order.pop();
                        taken[i] = false;
                    }
                }
                OpKind::Read(None) => unreachable!("pending reads are filtered out"),
            }
        }
        None
    }
}

/// Default cap on the number of search states explored by [`check_linearizable`].
pub const DEFAULT_STATE_LIMIT: u64 = 20_000_000;

/// Checks whether `history` is linearizable with respect to the register type with
/// initial value `init`, returning a witness linearization if so.
///
/// Histories spanning several registers are handled directly (the register objects are
/// independent, so this is equivalent to checking each register separately while merging
/// the real-time constraints).
///
/// # Example
///
/// ```
/// use rlt_spec::prelude::*;
///
/// let mut b = HistoryBuilder::new();
/// let w = b.write(ProcessId(0), RegisterId(0), 1i64);
/// let r = b.read(ProcessId(1), RegisterId(0), 0i64); // reads stale value after write completed
/// let h = b.build();
/// assert!(check_linearizable(&h, &0i64).is_none());
/// let _ = (w, r);
/// ```
#[must_use]
pub fn check_linearizable<V: RegisterValue>(history: &History<V>, init: &V) -> Option<SeqHistory<V>> {
    check_linearizable_report(history, init, DEFAULT_STATE_LIMIT).witness
}

/// Like [`check_linearizable`] but returns search statistics and allows customizing the
/// state-exploration cap.
#[must_use]
pub fn check_linearizable_report<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    state_limit: u64,
) -> LinearizabilityReport<V> {
    let mut searcher = Searcher::new(history, init, state_limit);
    let n = searcher.ops.len();
    let mut taken = vec![false; n];
    let mut state = BTreeMap::new();
    let mut order = Vec::new();
    let result = searcher.search(&mut taken, &mut state, &mut order);
    let witness = result.map(|order| {
        let ops = order
            .iter()
            .map(|&i| {
                let mut op = searcher.ops[i].clone();
                // Give linearized pending operations a matching response so the
                // sequential history is well-formed.
                if op.responded_at.is_none() {
                    op.responded_at = Some(history.max_time().next());
                }
                op
            })
            .collect();
        SeqHistory::from_ops(ops)
    });
    LinearizabilityReport {
        witness,
        states_explored: searcher.states_explored,
        states_memoized: searcher.states_memoized,
    }
}

/// Enumerates **all** linearizations of `history` (up to the given limit on how many to
/// return). Used by the existential write-strong-linearizability checks of
/// [`crate::strong`], which must quantify over every possible linearization of a prefix.
#[must_use]
pub fn enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
) -> Vec<SeqHistory<V>> {
    let ops: Vec<&Operation<V>> = history
        .operations()
        .iter()
        .filter(|o| o.is_complete() || o.is_write())
        .collect();
    let mut results = Vec::new();
    let mut taken = vec![false; ops.len()];
    let mut state: BTreeMap<RegisterId, V> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    enumerate_rec(
        &ops,
        init,
        &mut taken,
        &mut state,
        &mut order,
        &mut results,
        max_results,
    );
    results
        .into_iter()
        .map(|order| {
            let seq_ops = order
                .iter()
                .map(|&i| {
                    let mut op = ops[i].clone();
                    if op.responded_at.is_none() {
                        op.responded_at = Some(history.max_time().next());
                    }
                    op
                })
                .collect();
            SeqHistory::from_ops(seq_ops)
        })
        .collect()
}

fn enumerate_rec<V: RegisterValue>(
    ops: &[&Operation<V>],
    init: &V,
    taken: &mut Vec<bool>,
    state: &mut BTreeMap<RegisterId, V>,
    order: &mut Vec<usize>,
    results: &mut Vec<Vec<usize>>,
    max_results: usize,
) {
    if results.len() >= max_results {
        return;
    }
    if ops
        .iter()
        .enumerate()
        .all(|(i, o)| taken[i] || o.is_pending())
    {
        results.push(order.clone());
        // Keep exploring: linearizations that additionally include pending writes are
        // distinct and also valid, and are generated by the recursive calls below.
    }
    let candidate_idxs: Vec<usize> = (0..ops.len())
        .filter(|&i| !taken[i])
        .filter(|&i| {
            (0..ops.len())
                .filter(|&j| j != i && !taken[j])
                .all(|j| !ops[j].precedes(ops[i]))
        })
        .collect();
    for i in candidate_idxs {
        let op = ops[i];
        match &op.kind {
            OpKind::Write(v) => {
                let prev = state.insert(op.register, v.clone());
                taken[i] = true;
                order.push(i);
                enumerate_rec(ops, init, taken, state, order, results, max_results);
                order.pop();
                taken[i] = false;
                match prev {
                    Some(p) => {
                        state.insert(op.register, p);
                    }
                    None => {
                        state.remove(&op.register);
                    }
                }
            }
            OpKind::Read(Some(v)) => {
                let current = state.get(&op.register).unwrap_or(init);
                if current == v {
                    taken[i] = true;
                    order.push(i);
                    enumerate_rec(ops, init, taken, state, order, results, max_results);
                    order.pop();
                    taken[i] = false;
                }
            }
            OpKind::Read(None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{OpId, ProcessId};

    const R: RegisterId = RegisterId(0);

    #[test]
    fn sequential_history_is_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        b.read(ProcessId(1), R, 2i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("should be linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn concurrent_write_allows_either_read_value() {
        // Write of 1 concurrent with a read: the read may return 0 or 1.
        for read_val in [0i64, 1i64] {
            let mut b = HistoryBuilder::new();
            let w = b.invoke_write(ProcessId(0), R, 1i64);
            let r = b.invoke_read(ProcessId(1), R);
            b.respond_read(r, read_val);
            b.respond_write(w);
            let h = b.build();
            assert!(
                check_linearizable(&h, &0).is_some(),
                "read of {read_val} should be allowed"
            );
        }
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Classic non-linearizable pattern: r1 reads the new value, then a later
        // (non-overlapping) r2 reads the old value, while the write has completed
        // before both reads... build it so the write completes first.
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(2), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn pending_write_can_explain_read() {
        // A write that never responds can still be linearized to justify a read.
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 7i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("pending write should justify read");
        assert_eq!(witness.writes().len(), 1);
    }

    #[test]
    fn pending_write_may_also_be_dropped() {
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_some());
    }

    #[test]
    fn multi_register_histories_are_checked_jointly() {
        let r1 = RegisterId(1);
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), r1, 2i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(1), r1, 2i64);
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_some());

        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), r1, 1i64); // wrong register never written
        let h = b.build();
        assert!(check_linearizable(&h, &0).is_none());
    }

    #[test]
    fn the_paper_theorem6_pattern_is_linearizable() {
        // The key step of the Theorem 6 adversary: p0 writes [0,1], p1's write of [1,1]
        // overlaps all the players' reads; players read [0,1] then [1,1]. This must be
        // accepted by plain linearizability.
        use crate::value::Value;
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, Value::Pair(0, 1));
        let w1 = b.invoke_write(ProcessId(1), R, Value::Pair(1, 1));
        let r1a = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r1a, Value::Pair(0, 1));
        let r1b = b.invoke_read(ProcessId(2), R);
        b.respond_read(r1b, Value::Pair(1, 1));
        b.respond_write(w1);
        let h = b.build();
        assert!(check_linearizable(&h, &Value::Init).is_some());
    }

    #[test]
    fn report_exposes_statistics() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        let h = b.build();
        let report = check_linearizable_report(&h, &0, DEFAULT_STATE_LIMIT);
        assert!(report.is_linearizable());
        assert!(report.states_explored >= 1);
    }

    #[test]
    fn enumerate_finds_both_orders_of_concurrent_writes() {
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        b.respond_write(w0);
        b.respond_write(w1);
        let h = b.build();
        let all = enumerate_linearizations(&h, &0, 100);
        // Both interleavings of the two concurrent writes must appear.
        let orders: Vec<Vec<OpId>> = all.iter().map(|s| s.write_ids()).collect();
        assert!(orders.contains(&vec![OpId(0), OpId(1)]));
        assert!(orders.contains(&vec![OpId(1), OpId(0)]));
    }

    #[test]
    fn enumerate_respects_real_time_order() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();
        let all = enumerate_linearizations(&h, &0, 100);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].write_ids(), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<i64> = History::new();
        let witness = check_linearizable(&h, &0).unwrap();
        assert!(witness.is_empty());
    }

    #[test]
    fn every_witness_is_a_valid_linearization() {
        // A moderately concurrent history; whatever witness comes back must satisfy the
        // full Definition 2 check.
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 10i64);
        let w1 = b.invoke_write(ProcessId(1), R, 20i64);
        let r0 = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r0, 20i64);
        let r1 = b.invoke_read(ProcessId(3), R);
        b.respond_write(w1);
        b.respond_read(r1, 20i64);
        let h = b.build();
        let witness = check_linearizable(&h, &0).expect("linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }
}
