//! Legacy free-function checking API, kept as thin deprecated shims.
//!
//! The checking surface now lives on [`crate::Checker`]: one builder-configured
//! session object with [`check`](crate::Checker::check) /
//! [`check_many`](crate::Checker::check_many) /
//! [`linearizations`](crate::Checker::linearizations) replacing the function soup that
//! grew here (`check_linearizable`, `check_linearizable_report`,
//! `check_linearizable_batch`, `enumerate_linearizations` and its `try_` variant, each
//! with its own ad-hoc limit parameter). Every function below still works — each one
//! builds a default [`Checker`] with the matching knob and delegates — but new code
//! should hold a `Checker` and reuse it: the session keeps its search scratch warm
//! across calls, which these per-call shims cannot.
//!
//! This module still owns the default budget constants ([`DEFAULT_STATE_LIMIT`],
//! [`DEFAULT_ENUMERATION_WORK_LIMIT`]) and the [`LinearizabilityReport`] type the
//! report shim returns.

use crate::checker::Checker;
pub use crate::engine::EnumerationLimitExceeded;
use crate::history::History;
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;

/// Statistics and outcome of a linearizability check, as returned by the deprecated
/// [`check_linearizable_report`] shim. New code reads the same information from
/// [`crate::Verdict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearizabilityReport<V> {
    /// A witness linearization if one exists.
    pub witness: Option<SeqHistory<V>>,
    /// Number of search states explored.
    pub states_explored: u64,
    /// Number of states pruned by memoization.
    pub states_memoized: u64,
    /// `true` if the search gave up because it hit the state-exploration cap; in that
    /// case a missing witness does **not** prove the history non-linearizable.
    pub limit_hit: bool,
}

impl<V> LinearizabilityReport<V> {
    /// Returns `true` if the history was found to be linearizable.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.witness.is_some()
    }
}

/// Default cap on the number of search states explored by a [`Checker`] check.
pub const DEFAULT_STATE_LIMIT: u64 = 20_000_000;

/// Default cap on search nodes visited by a [`Checker`] enumeration (eager or
/// streaming) before it declares the input adversarial and fails with
/// [`EnumerationLimitExceeded`].
pub const DEFAULT_ENUMERATION_WORK_LIMIT: u64 = 20_000_000;

fn verdict_to_report<V: RegisterValue>(
    verdict: crate::checker::Verdict<V>,
) -> LinearizabilityReport<V> {
    let limit_hit = !verdict.is_conclusive();
    let stats = verdict.stats();
    LinearizabilityReport {
        witness: verdict.into_witness(),
        states_explored: stats.states_explored,
        states_memoized: stats.states_memoized,
        limit_hit,
    }
}

/// Checks whether `history` is linearizable with respect to the register type with
/// initial value `init`, returning a witness linearization if so.
#[deprecated(since = "0.2.0", note = "build a `Checker` and call `check`")]
#[must_use]
pub fn check_linearizable<V: RegisterValue>(
    history: &History<V>,
    init: &V,
) -> Option<SeqHistory<V>> {
    Checker::new(init.clone())
        .check_local(history)
        .into_witness()
}

/// Like [`check_linearizable`] but returns search statistics and allows customizing
/// the state-exploration cap.
#[deprecated(
    since = "0.2.0",
    note = "build a `Checker` with `state_budget` and call `check`"
)]
#[must_use]
pub fn check_linearizable_report<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    state_limit: u64,
) -> LinearizabilityReport<V> {
    let checker = Checker::builder(init.clone())
        .state_budget(state_limit)
        .build();
    verdict_to_report(checker.check_local(history))
}

/// Checks a whole slice of histories against the same initial value, fanning the
/// checks across the current rayon pool.
#[deprecated(
    since = "0.2.0",
    note = "build a `Checker` with `state_budget` and call `check_many`"
)]
#[must_use]
pub fn check_linearizable_batch<V: RegisterValue + Send + Sync>(
    histories: &[History<V>],
    init: &V,
    state_limit: u64,
) -> Vec<LinearizabilityReport<V>> {
    let checker = Checker::builder(init.clone())
        .state_budget(state_limit)
        .build();
    checker
        .check_many(histories)
        .into_iter()
        .map(verdict_to_report)
        .collect()
}

/// Enumerates **all** linearizations of `history` (up to the given limit on how many
/// to return).
///
/// # Panics
///
/// Panics if the search visits more than [`DEFAULT_ENUMERATION_WORK_LIMIT`] nodes —
/// adversarially concurrent histories fail loudly instead of hanging. New code should
/// use the streaming [`Checker::linearizations`] iterator (which surfaces the cap as
/// an item) or [`Checker::enumerate`].
#[deprecated(
    since = "0.2.0",
    note = "build a `Checker` and call `linearizations` (streaming) or `enumerate`"
)]
#[must_use]
pub fn enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
) -> Vec<SeqHistory<V>> {
    Checker::new(init.clone())
        .enumerate(history, max_results)
        .unwrap_or_else(|e| {
            panic!("{e}; configure the cap via CheckerBuilder::enumeration_work_cap")
        })
}

/// Like [`enumerate_linearizations`] but with an explicit work cap: at most
/// `work_limit` search nodes are visited before the enumeration gives up with
/// [`EnumerationLimitExceeded`].
#[deprecated(
    since = "0.2.0",
    note = "build a `Checker` with `enumeration_work_cap` and call `linearizations` or `enumerate`"
)]
pub fn try_enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
    work_limit: u64,
) -> Result<Vec<SeqHistory<V>>, EnumerationLimitExceeded> {
    Checker::builder(init.clone())
        .enumeration_work_cap(work_limit)
        .build()
        .enumerate(history, max_results)
}

#[cfg(test)]
mod tests {
    use super::{EnumerationLimitExceeded, DEFAULT_STATE_LIMIT};
    use crate::checker::Checker;
    use crate::history::{History, HistoryBuilder};
    use crate::ids::{OpId, ProcessId, RegisterId};

    const R: RegisterId = RegisterId(0);

    fn checker() -> Checker<i64> {
        Checker::new(0i64)
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        b.read(ProcessId(1), R, 2i64);
        let h = b.build();
        let witness = checker()
            .check(&h)
            .into_witness()
            .expect("should be linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(!checker().check(&h).is_linearizable());
    }

    #[test]
    fn concurrent_write_allows_either_read_value() {
        // Write of 1 concurrent with a read: the read may return 0 or 1.
        for read_val in [0i64, 1i64] {
            let mut b = HistoryBuilder::new();
            let w = b.invoke_write(ProcessId(0), R, 1i64);
            let r = b.invoke_read(ProcessId(1), R);
            b.respond_read(r, read_val);
            b.respond_write(w);
            let h = b.build();
            assert!(
                checker().check(&h).is_linearizable(),
                "read of {read_val} should be allowed"
            );
        }
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Classic non-linearizable pattern: r1 reads the new value, then a later
        // (non-overlapping) r2 reads the old value, while the write has completed
        // before both reads... build it so the write completes first.
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(2), R, 0i64);
        let h = b.build();
        assert!(!checker().check(&h).is_linearizable());
    }

    #[test]
    fn pending_write_can_explain_read() {
        // A write that never responds can still be linearized to justify a read.
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 7i64);
        let h = b.build();
        let witness = checker()
            .check(&h)
            .into_witness()
            .expect("pending write should justify read");
        assert_eq!(witness.writes().len(), 1);
    }

    #[test]
    fn pending_write_may_also_be_dropped() {
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(checker().check(&h).is_linearizable());
    }

    #[test]
    fn multi_register_histories_are_checked_jointly() {
        let r1 = RegisterId(1);
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), r1, 2i64);
        b.read(ProcessId(1), R, 1i64);
        b.read(ProcessId(1), r1, 2i64);
        let h = b.build();
        assert!(checker().check(&h).is_linearizable());

        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), r1, 1i64); // wrong register never written
        let h = b.build();
        assert!(!checker().check(&h).is_linearizable());
    }

    #[test]
    fn multi_register_witness_respects_cross_register_real_time() {
        // Sequential chain alternating registers: the merged witness must interleave
        // the per-register linearizations in real-time order.
        let r1 = RegisterId(1);
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), r1, 10i64);
        b.write(ProcessId(0), R, 2i64);
        b.read(ProcessId(1), r1, 10i64);
        b.read(ProcessId(1), R, 2i64);
        b.write(ProcessId(0), r1, 20i64);
        b.read(ProcessId(1), r1, 20i64);
        let h = b.build();
        let witness = checker().check(&h).into_witness().expect("linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    fn the_paper_theorem6_pattern_is_linearizable() {
        // The key step of the Theorem 6 adversary: p0 writes [0,1], p1's write of [1,1]
        // overlaps all the players' reads; players read [0,1] then [1,1]. This must be
        // accepted by plain linearizability.
        use crate::value::Value;
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, Value::Pair(0, 1));
        let w1 = b.invoke_write(ProcessId(1), R, Value::Pair(1, 1));
        let r1a = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r1a, Value::Pair(0, 1));
        let r1b = b.invoke_read(ProcessId(2), R);
        b.respond_read(r1b, Value::Pair(1, 1));
        b.respond_write(w1);
        let h = b.build();
        assert!(Checker::new(Value::Init).check(&h).is_linearizable());
    }

    #[test]
    fn verdict_exposes_statistics() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        let h = b.build();
        let verdict = checker().check(&h);
        assert!(verdict.is_linearizable());
        assert!(verdict.stats().states_explored >= 1);
        assert!(verdict.is_conclusive());
    }

    #[test]
    fn state_budget_aborts_and_is_reported() {
        // Many concurrent pending writes plus a read: a tiny budget cannot finish.
        let mut b = HistoryBuilder::new();
        for i in 0..8 {
            let _ = b.invoke_write(ProcessId(i), R, i as i64 + 1);
        }
        b.read(ProcessId(9), R, 4i64);
        let h = b.build();
        let verdict = Checker::builder(0i64).state_budget(2).build().check(&h);
        assert!(!verdict.is_conclusive());
        assert!(!verdict.is_linearizable());
        let relaxed = Checker::builder(0i64)
            .state_budget(DEFAULT_STATE_LIMIT)
            .build()
            .check(&h);
        assert!(relaxed.is_conclusive());
    }

    #[test]
    fn enumerate_finds_both_orders_of_concurrent_writes() {
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        b.respond_write(w0);
        b.respond_write(w1);
        let h = b.build();
        let all = checker().enumerate(&h, 100).unwrap();
        // Both interleavings of the two concurrent writes must appear.
        let orders: Vec<Vec<OpId>> = all.iter().map(|s| s.write_ids()).collect();
        assert!(orders.contains(&vec![OpId(0), OpId(1)]));
        assert!(orders.contains(&vec![OpId(1), OpId(0)]));
    }

    #[test]
    fn enumerate_respects_real_time_order() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();
        let all = checker().enumerate(&h, 100).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].write_ids(), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn enumeration_work_cap_is_reported() {
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..8)
            .map(|i| b.invoke_write(ProcessId(i), R, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        let h = b.build();
        let tight = Checker::builder(0i64).enumeration_work_cap(10).build();
        let err: EnumerationLimitExceeded = tight.enumerate(&h, usize::MAX).unwrap_err();
        assert!(err.nodes_visited > 10);
        // A generous cap succeeds on the same history.
        assert!(checker().enumerate(&h, 10).is_ok());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<i64> = History::new();
        let witness = checker().check(&h).into_witness().unwrap();
        assert!(witness.is_empty());
    }

    #[test]
    fn every_witness_is_a_valid_linearization() {
        // A moderately concurrent history; whatever witness comes back must satisfy the
        // full Definition 2 check.
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 10i64);
        let w1 = b.invoke_write(ProcessId(1), R, 20i64);
        let r0 = b.invoke_read(ProcessId(2), R);
        b.respond_write(w0);
        b.respond_read(r0, 20i64);
        let r1 = b.invoke_read(ProcessId(3), R);
        b.respond_write(w1);
        b.respond_read(r1, 20i64);
        let h = b.build();
        let witness = checker().check(&h).into_witness().expect("linearizable");
        assert!(witness.is_linearization_of(&h, &0));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_checker() {
        use super::{
            check_linearizable, check_linearizable_batch, check_linearizable_report,
            enumerate_linearizations, try_enumerate_linearizations,
        };
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        b.respond_write(w0);
        b.respond_write(w1);
        b.read(ProcessId(2), R, 2i64);
        let h = b.build();
        let c = checker();
        assert_eq!(check_linearizable(&h, &0), c.check(&h).into_witness());
        let report = check_linearizable_report(&h, &0, DEFAULT_STATE_LIMIT);
        let verdict = c.check(&h);
        assert_eq!(report.witness, verdict.clone().into_witness());
        assert_eq!(report.states_explored, verdict.stats().states_explored);
        assert_eq!(report.limit_hit, !verdict.is_conclusive());
        let batch = check_linearizable_batch(std::slice::from_ref(&h), &0, DEFAULT_STATE_LIMIT);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0], report);
        assert_eq!(
            enumerate_linearizations(&h, &0, 10),
            c.enumerate(&h, 10).unwrap()
        );
        assert_eq!(
            try_enumerate_linearizations(&h, &0, 10, 1_000_000).unwrap(),
            c.enumerate(&h, 10).unwrap()
        );
    }
}
