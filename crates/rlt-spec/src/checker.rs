//! The unified checking session: [`Checker`] and its builder.
//!
//! A [`Checker`] bundles everything that used to be scattered across per-call
//! parameters of the free checking functions — the initial register value, the
//! state-exploration budget, the enumeration work cap, the thread policy, and whether
//! witnesses are materialized — into one reusable session object:
//!
//! ```
//! use rlt_spec::prelude::*;
//!
//! let checker = Checker::new(0i64);
//! let mut b = HistoryBuilder::new();
//! b.write(ProcessId(0), RegisterId(0), 1i64);
//! b.read(ProcessId(1), RegisterId(0), 1i64);
//! let history = b.build();
//!
//! let verdict = checker.check(&history);
//! assert!(verdict.is_linearizable());
//! assert!(verdict.witness().unwrap().is_linearization_of(&history, &0));
//! ```
//!
//! Beyond configuration, a `Checker` is a *session*: it owns a pool of
//! [`SearchScratch`](crate::engine::SearchScratch) arenas that are reused across
//! [`Checker::check`] calls and across the histories of a [`Checker::check_many`]
//! batch, so small-history workloads stop paying per-call allocation, and (under
//! [`ThreadPolicy::Fixed`]) it owns the thread pool it fans out on. Enumeration is
//! exposed as the *streaming* [`Checker::linearizations`] iterator, which runs the
//! underlying search exactly as far as the consumer pulls.

use crate::engine::{
    Engine, EnumerationLimitExceeded, Linearizations, MemoStats, ScratchPool, StateSketch,
    DEFAULT_SPLIT_THRESHOLD,
};
use crate::history::History;
use crate::incremental::IncrementalChecker;
use crate::linearizability::{DEFAULT_ENUMERATION_WORK_LIMIT, DEFAULT_STATE_LIMIT};
use crate::op::Operation;
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;
use std::fmt;
use std::sync::OnceLock;

/// How a [`Checker`] distributes its search work over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadPolicy {
    /// Use whatever rayon pool is current at the call site (the global pool, or the
    /// pool of an enclosing `install`). This is the default and composes with callers
    /// that already manage pools.
    #[default]
    Auto,
    /// Pin every search to the calling thread. Useful for latency-sensitive small
    /// checks (no fork-join overhead) and as the definitional baseline the parallel
    /// paths are diffed against.
    Sequential,
    /// Fan out on a dedicated pool of exactly `n` logical threads, built lazily on
    /// first use and owned by the checker.
    Fixed(usize),
}

/// Search statistics of one check (or one family check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Search nodes visited across all witness sub-searches.
    pub states_explored: u64,
    /// Nodes pruned by memoization.
    pub states_memoized: u64,
    /// Enumeration nodes visited (zero for plain witness checks; populated by
    /// enumeration-backed checks such as [`crate::ExtensionFamily`]).
    pub enumeration_nodes: u64,
    /// Memo-table counters of the check: slot probes, hits, and the arena high-water
    /// mark. Deterministic like every other statistic — bit-identical across thread
    /// policies, pool widths, and scratch reuse.
    pub memo: MemoStats,
}

/// Why a check could not reach a conclusive verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckError {
    /// The state-exploration budget ran out before the search finished; a missing
    /// witness proves nothing. Raise the budget via
    /// [`CheckerBuilder::state_budget`].
    StateBudgetExhausted {
        /// Search nodes visited before the budget ran dry.
        states_explored: u64,
    },
    /// Enumeration exceeded its work cap (see
    /// [`CheckerBuilder::enumeration_work_cap`]).
    EnumerationLimitExceeded(EnumerationLimitExceeded),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::StateBudgetExhausted { states_explored } => write!(
                f,
                "state budget exhausted after {states_explored} search states; \
                 the verdict is inconclusive"
            ),
            CheckError::EnumerationLimitExceeded(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<EnumerationLimitExceeded> for CheckError {
    fn from(e: EnumerationLimitExceeded) -> Self {
        CheckError::EnumerationLimitExceeded(e)
    }
}

/// Outcome of [`Checker::check`]: a typed three-way verdict (linearizable with an
/// optional witness / not linearizable / inconclusive because the budget ran out)
/// plus search statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict<V> {
    /// `Some(true)` = linearizable, `Some(false)` = proven not linearizable, `None` =
    /// the state budget ran out before the search finished.
    decision: Option<bool>,
    witness: Option<SeqHistory<V>>,
    stats: CheckStats,
}

impl<V> Verdict<V> {
    pub(crate) fn new(
        decision: Option<bool>,
        witness: Option<SeqHistory<V>>,
        stats: CheckStats,
    ) -> Self {
        Verdict {
            decision,
            witness,
            stats,
        }
    }

    /// `true` iff the history was *proven* linearizable. An inconclusive check (see
    /// [`Verdict::outcome`]) returns `false` here, same as a proven violation.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.decision == Some(true)
    }

    /// `true` when the search ran to completion (either verdict), `false` when the
    /// state budget ran out first.
    #[must_use]
    pub fn is_conclusive(&self) -> bool {
        self.decision.is_some()
    }

    /// The verdict as a value: `Ok(true)` / `Ok(false)` for a conclusive check,
    /// `Err(`[`CheckError::StateBudgetExhausted`]`)` when the budget ran out.
    pub fn outcome(&self) -> Result<bool, CheckError> {
        self.decision.ok_or(CheckError::StateBudgetExhausted {
            states_explored: self.stats.states_explored,
        })
    }

    /// The witness linearization, if the history is linearizable and the checker
    /// records witnesses (see [`CheckerBuilder::witness`]).
    #[must_use]
    pub fn witness(&self) -> Option<&SeqHistory<V>> {
        self.witness.as_ref()
    }

    /// Consumes the verdict, returning the witness linearization if there is one.
    #[must_use]
    pub fn into_witness(self) -> Option<SeqHistory<V>> {
        self.witness
    }

    /// Search statistics of this check.
    #[must_use]
    pub fn stats(&self) -> CheckStats {
        self.stats
    }
}

/// Builder for [`Checker`]; obtain one via [`Checker::builder`].
#[derive(Debug, Clone)]
pub struct CheckerBuilder<V> {
    init: V,
    state_budget: u64,
    enumeration_work_cap: u64,
    threads: ThreadPolicy,
    witness: bool,
    scratch_reuse: bool,
    split_threshold: u32,
}

impl<V: RegisterValue> CheckerBuilder<V> {
    /// Caps the number of search states a single [`Checker::check`] may explore
    /// before giving up with an inconclusive verdict. Default:
    /// [`DEFAULT_STATE_LIMIT`].
    #[must_use]
    pub fn state_budget(mut self, states: u64) -> Self {
        self.state_budget = states;
        self
    }

    /// Caps the number of enumeration nodes a [`Checker::linearizations`] iterator
    /// (or an eager [`Checker::enumerate`]) may visit before failing with
    /// [`EnumerationLimitExceeded`]. Default: [`DEFAULT_ENUMERATION_WORK_LIMIT`].
    #[must_use]
    pub fn enumeration_work_cap(mut self, nodes: u64) -> Self {
        self.enumeration_work_cap = nodes;
        self
    }

    /// Sets the thread policy. Default: [`ThreadPolicy::Auto`]. Thread policy is
    /// unobservable in results — verdicts, witnesses, and statistics are bit-identical
    /// across policies and pool widths; only wall-clock time moves.
    #[must_use]
    pub fn threads(mut self, policy: ThreadPolicy) -> Self {
        self.threads = policy;
        self
    }

    /// Whether [`Checker::check`] materializes witness linearizations (default:
    /// `true`). Turning this off skips the witness's operation cloning on the
    /// accept path; verdicts and statistics are unaffected.
    #[must_use]
    pub fn witness(mut self, record: bool) -> Self {
        self.witness = record;
        self
    }

    /// Whether the checker keeps its search scratch arenas (taken/vals/stack/memo
    /// buffers) warm across calls (default: `true`). Turning this off makes every
    /// check allocate from scratch — only useful for measuring what reuse saves (see
    /// the `checker_reuse` bench group).
    #[must_use]
    pub fn scratch_reuse(mut self, reuse: bool) -> Self {
        self.scratch_reuse = reuse;
        self
    }

    /// Root-frontier size at which a single register's witness search is split into
    /// shards and (under a multi-thread policy) fanned across the pool — the
    /// within-register counterpart of per-register composition. Default:
    /// [`DEFAULT_SPLIT_THRESHOLD`], which is above the concurrency of typical
    /// histories; lower it for workloads with wide open concurrency in one register.
    /// The threshold is part of the canonical search semantics: it can change the
    /// statistics (a sharded sweep may explore more states than the plain DFS, so
    /// under a tight [`CheckerBuilder::state_budget`] a conclusive check can become
    /// inconclusive), but a conclusive verdict and its witness are
    /// threshold-independent — and at any fixed value results remain bit-identical
    /// across thread policies and pool widths.
    #[must_use]
    pub fn split_threshold(mut self, frontier_ops: u32) -> Self {
        self.split_threshold = frontier_ops;
        self
    }

    /// Finishes the builder as an [`IncrementalChecker`] session: append operations
    /// (and completions) as they happen and ask for a verdict after any prefix,
    /// paying amortized sublinear per-op cost instead of a full re-check. Verdicts
    /// are bit-identical to [`Checker::check`] on the same complete history at every
    /// thread policy; the thread policy and scratch-reuse settings are therefore
    /// irrelevant to the session and ignored. See [`crate::incremental`] for the
    /// reuse/invalidation rule and a live-monitor example.
    #[must_use]
    pub fn build_incremental(self) -> IncrementalChecker<V> {
        IncrementalChecker::from_config(
            self.init,
            self.state_budget,
            self.witness,
            self.split_threshold,
        )
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Checker<V> {
        Checker {
            init: self.init,
            state_budget: self.state_budget,
            enumeration_work_cap: self.enumeration_work_cap,
            threads: self.threads,
            witness: self.witness,
            scratch_reuse: self.scratch_reuse,
            split_threshold: self.split_threshold,
            scratch: ScratchPool::new(),
            pool: OnceLock::new(),
        }
    }
}

/// A reusable linearizability-checking session over one register type (fixed initial
/// value): see the [module docs](crate::checker) for the full story.
///
/// Construct with [`Checker::new`] (defaults) or [`Checker::builder`] (budgets,
/// thread policy, witness recording, scratch reuse), then call:
///
/// * [`Checker::check`] — one history, typed [`Verdict`];
/// * [`Checker::check_many`] — a batch, fanned across the thread policy's pool, each
///   entry bit-identical to the corresponding solo [`Checker::check`];
/// * [`Checker::linearizations`] — a lazy streaming [`Linearizations`] iterator over
///   every linearization of a history;
/// * [`Checker::enumerate`] — the eager form of the same enumeration.
#[derive(Debug)]
pub struct Checker<V> {
    init: V,
    state_budget: u64,
    enumeration_work_cap: u64,
    threads: ThreadPolicy,
    witness: bool,
    scratch_reuse: bool,
    split_threshold: u32,
    scratch: ScratchPool,
    pool: OnceLock<rayon::ThreadPool>,
}

impl<V: RegisterValue> Checker<V> {
    /// A checker with default configuration: default budgets, [`ThreadPolicy::Auto`],
    /// witnesses recorded, scratch reused.
    #[must_use]
    pub fn new(init: V) -> Self {
        Checker::builder(init).build()
    }

    /// Starts configuring a checker for registers with initial value `init`.
    #[must_use]
    pub fn builder(init: V) -> CheckerBuilder<V> {
        CheckerBuilder {
            init,
            state_budget: DEFAULT_STATE_LIMIT,
            enumeration_work_cap: DEFAULT_ENUMERATION_WORK_LIMIT,
            threads: ThreadPolicy::Auto,
            witness: true,
            scratch_reuse: true,
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
        }
    }

    /// The initial register value every check of this session assumes.
    #[must_use]
    pub fn init(&self) -> &V {
        &self.init
    }

    /// Number of warm scratch arenas currently parked in the session (observability
    /// for the reuse tests and benches).
    #[must_use]
    pub fn idle_scratch_arenas(&self) -> usize {
        self.scratch.idle_arenas()
    }

    /// Starts a fresh [`IncrementalChecker`] session with this checker's
    /// configuration (initial value, state budget, witness recording, split
    /// threshold). The session's verdicts are bit-identical to [`Checker::check`]
    /// on the same complete history at every thread policy. See
    /// [`crate::incremental`] for the reuse/invalidation rule and a live-monitor
    /// example.
    #[must_use]
    pub fn incremental(&self) -> IncrementalChecker<V> {
        IncrementalChecker::from_config(
            self.init.clone(),
            self.state_budget,
            self.witness,
            self.split_threshold,
        )
    }

    /// Checks whether `history` is linearizable.
    ///
    /// The verdict is deterministic and bit-identical across thread policies and pool
    /// widths (the engine replays the sequential budget accounting over the parallel
    /// results; see [`Engine::check`]).
    #[must_use]
    pub fn check(&self, history: &History<V>) -> Verdict<V>
    where
        V: Send + Sync,
    {
        self.check_sketched(history).0
    }

    /// [`Checker::check`] plus the check's [`StateSketch`]: an HLL sketch of the
    /// distinct search configurations the check memoized, mergeable across checks by
    /// a long-lived aggregator (a checking service's `/metrics` endpoint). The
    /// verdict is the *same* object [`Checker::check`] would return — callers that
    /// also hold a direct `check` result can compare them bit-for-bit.
    #[must_use]
    pub fn check_sketched(&self, history: &History<V>) -> (Verdict<V>, StateSketch)
    where
        V: Send + Sync,
    {
        match self.threads {
            ThreadPolicy::Fixed(n) => self
                .fixed_pool(n)
                .install(|| self.check_local_sketched(history)),
            _ => self.check_local_sketched(history),
        }
    }

    /// Checks a whole batch of histories; results come back in input order and every
    /// entry is bit-identical to the corresponding solo [`Checker::check`] — batching
    /// changes wall-clock time, never outcomes.
    ///
    /// Under [`ThreadPolicy::Auto`] the batch fans across the current rayon pool;
    /// under [`ThreadPolicy::Fixed`] across the checker's own pool. Per-worker
    /// scratch arenas come from the session pool, so the batch's allocations are
    /// amortized across its histories.
    #[must_use]
    pub fn check_many(&self, histories: &[History<V>]) -> Vec<Verdict<V>>
    where
        V: Send + Sync,
    {
        match self.threads {
            ThreadPolicy::Sequential => histories.iter().map(|h| self.check_local(h)).collect(),
            ThreadPolicy::Auto => rayon::par_map(histories, |h| self.check_local(h)),
            ThreadPolicy::Fixed(n) => self
                .fixed_pool(n)
                .install(|| rayon::par_map(histories, |h| self.check_local(h))),
        }
    }

    /// Streams the linearizations of `history` lazily: the returned
    /// [`Linearizations`] iterator runs the underlying search exactly as far as it is
    /// pulled, in the same emission order as [`Checker::enumerate`], bounded by the
    /// session's enumeration work cap.
    #[must_use]
    pub fn linearizations<'s>(&'s self, history: &'s History<V>) -> Linearizations<'s, V> {
        Linearizations::new(history, &self.init, self.enumeration_work_cap)
    }

    /// Eagerly enumerates the linearizations of `history`, up to `max_results`, as
    /// materialized sequential histories. Equivalent to draining
    /// [`Checker::linearizations`] and materializing every order, but in one call.
    pub fn enumerate(
        &self,
        history: &History<V>,
        max_results: usize,
    ) -> Result<Vec<SeqHistory<V>>, EnumerationLimitExceeded> {
        let engine = Engine::new(history, &self.init);
        let orders = engine.enumerate(max_results, self.enumeration_work_cap)?;
        Ok(orders
            .iter()
            .map(|order| order_to_seq(history, engine.ops(), order))
            .collect())
    }

    /// [`Checker::check`] without the hop onto a [`ThreadPolicy::Fixed`] session
    /// pool: the search runs on the calling thread's current rayon pool (`Auto`) or
    /// strictly sequentially (`Sequential`), with identical results.
    ///
    /// Because the check never leaves the calling thread's pool, this method needs
    /// no `Send + Sync` on `V` — use it for value types that are not thread-safe
    /// (the bound on [`Checker::check`] exists only for the `Fixed` hand-off). The
    /// deprecated free-function shims and the [`crate::swmr::SwmrCanonical`]
    /// fallback delegate here for exactly that reason.
    pub fn check_local(&self, history: &History<V>) -> Verdict<V> {
        self.check_local_sketched(history).0
    }

    /// [`Checker::check_local`] plus the check's [`StateSketch`] (see
    /// [`Checker::check_sketched`]).
    pub fn check_local_sketched(&self, history: &History<V>) -> (Verdict<V>, StateSketch) {
        let fresh = ScratchPool::new();
        let scratch = if self.scratch_reuse {
            &self.scratch
        } else {
            &fresh
        };
        let engine = Engine::new(history, &self.init).with_split_threshold(self.split_threshold);
        let outcome = match self.threads {
            ThreadPolicy::Sequential => engine.check_sequential_with(self.state_budget, scratch),
            _ => engine.check_with(self.state_budget, scratch),
        };
        let decision = if outcome.order.is_some() {
            Some(true)
        } else if outcome.limit_hit {
            None
        } else {
            Some(false)
        };
        let witness = if self.witness {
            outcome
                .order
                .map(|order| order_to_seq(history, engine.ops(), &order))
        } else {
            None
        };
        (
            Verdict::new(
                decision,
                witness,
                CheckStats {
                    states_explored: outcome.states_explored,
                    states_memoized: outcome.states_memoized,
                    enumeration_nodes: 0,
                    memo: outcome.memo,
                },
            ),
            outcome.sketch,
        )
    }

    fn fixed_pool(&self, threads: usize) -> &rayon::ThreadPool {
        self.pool.get_or_init(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build the checker's fixed-width thread pool")
        })
    }
}

/// Materializes an order of indices into `ops` as a [`SeqHistory`], giving linearized
/// pending operations a matching response so the sequential history is well-formed.
pub(crate) fn order_to_seq<V: RegisterValue>(
    history: &History<V>,
    ops: &[&Operation<V>],
    order: &[usize],
) -> SeqHistory<V> {
    let completion_time = history.max_time().next();
    let seq_ops = order
        .iter()
        .map(|&i| {
            let mut op = ops[i].clone();
            if op.responded_at.is_none() {
                op.responded_at = Some(completion_time);
            }
            op
        })
        .collect();
    SeqHistory::from_ops(seq_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{ProcessId, RegisterId};

    const R: RegisterId = RegisterId(0);
    const R1: RegisterId = RegisterId(1);

    fn seq_history() -> History<i64> {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.build()
    }

    fn stale_history() -> History<i64> {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 0i64);
        b.build()
    }

    #[test]
    fn default_checker_decides_both_verdicts() {
        let checker = Checker::new(0i64);
        let ok = checker.check(&seq_history());
        assert!(ok.is_linearizable());
        assert!(ok.is_conclusive());
        assert_eq!(ok.outcome(), Ok(true));
        assert!(ok.witness().is_some());
        let bad = checker.check(&stale_history());
        assert!(!bad.is_linearizable());
        assert_eq!(bad.outcome(), Ok(false));
        assert!(bad.witness().is_none());
    }

    #[test]
    fn tiny_state_budget_is_inconclusive() {
        let mut b = HistoryBuilder::new();
        for i in 0..8 {
            let _ = b.invoke_write(ProcessId(i), R, i as i64 + 1);
        }
        b.read(ProcessId(9), R, 4i64);
        let h = b.build();
        let checker = Checker::builder(0i64).state_budget(2).build();
        let verdict = checker.check(&h);
        assert!(!verdict.is_conclusive());
        assert!(!verdict.is_linearizable());
        let err = verdict.outcome().unwrap_err();
        assert!(matches!(err, CheckError::StateBudgetExhausted { .. }));
        assert!(err.to_string().contains("inconclusive"));
    }

    #[test]
    fn witness_off_keeps_verdict_and_stats() {
        let h = seq_history();
        let with = Checker::new(0i64).check(&h);
        let without = Checker::builder(0i64).witness(false).build().check(&h);
        assert!(without.is_linearizable());
        assert!(without.witness().is_none());
        assert_eq!(with.stats(), without.stats());
        assert_eq!(with.outcome(), without.outcome());
    }

    #[test]
    fn thread_policies_agree_bit_for_bit() {
        let mut b = HistoryBuilder::new();
        for i in 0..3u64 {
            let _ = b.invoke_write(ProcessId(i as usize), R, i as i64 + 1);
            b.write(ProcessId(i as usize), R1, i as i64 + 10);
        }
        b.read(ProcessId(7), R, 2i64);
        b.read(ProcessId(8), R1, 12i64);
        let h = b.build();
        let sequential = Checker::builder(0i64)
            .threads(ThreadPolicy::Sequential)
            .build()
            .check(&h);
        for policy in [
            ThreadPolicy::Auto,
            ThreadPolicy::Fixed(2),
            ThreadPolicy::Fixed(4),
        ] {
            let verdict = Checker::builder(0i64).threads(policy).build().check(&h);
            assert_eq!(verdict, sequential, "{policy:?}");
        }
    }

    #[test]
    fn check_many_matches_solo_checks() {
        let histories: Vec<History<i64>> = (0..6)
            .map(|seed| {
                let mut b = HistoryBuilder::new();
                b.write(ProcessId(0), R, seed);
                b.write(ProcessId(0), R1, seed + 1);
                b.read(ProcessId(1), R, if seed % 2 == 0 { seed } else { 99 });
                b.build()
            })
            .collect();
        for policy in [
            ThreadPolicy::Auto,
            ThreadPolicy::Sequential,
            ThreadPolicy::Fixed(2),
        ] {
            let checker = Checker::builder(0i64).threads(policy).build();
            let batch = checker.check_many(&histories);
            for (i, h) in histories.iter().enumerate() {
                assert_eq!(batch[i], checker.check(h), "{policy:?} history {i}");
            }
        }
    }

    #[test]
    fn memo_stats_are_reported_and_reuse_invisible() {
        let mut b = HistoryBuilder::new();
        for i in 0..4 {
            let id = b.invoke_write(ProcessId(i), R, i as i64 + 1);
            b.respond_write(id);
        }
        b.read(ProcessId(5), R, 1i64);
        let h = b.build();
        let warm = Checker::new(0i64);
        let first = warm.check(&h);
        let memo = first.stats().memo;
        assert!(
            memo.probes > 0,
            "every explored state probes the memo table"
        );
        assert!(memo.arena_high_water > 0);
        assert_eq!(
            memo.hits,
            first.stats().states_memoized,
            "plain witness checks prune exactly once per hit"
        );
        // A second check through the same (now warm) session and a cold checker must
        // report bit-identical stats: the memo table's logical geometry is
        // deterministic, so probe counts cannot depend on buffer warmth.
        assert_eq!(warm.check(&h).stats(), first.stats());
        let cold = Checker::builder(0i64).scratch_reuse(false).build();
        assert_eq!(cold.check(&h).stats(), first.stats());
    }

    #[test]
    fn split_threshold_changes_stats_never_verdicts() {
        let mut b = HistoryBuilder::new();
        let ids: Vec<_> = (0..6)
            .map(|i| b.invoke_write(ProcessId(i), R, i as i64 + 1))
            .collect();
        for id in ids {
            b.respond_write(id);
        }
        b.read(ProcessId(7), R, 3i64);
        let h = b.build();
        let default = Checker::new(0i64).check(&h);
        let split = Checker::builder(0i64).split_threshold(2).build().check(&h);
        assert_eq!(split.outcome(), default.outcome());
        assert_eq!(
            split.witness().map(SeqHistory::op_ids),
            default.witness().map(SeqHistory::op_ids),
            "sharding must find the same first witness as the plain DFS"
        );
        // The sharded sweep re-explores the root per shard and drops cross-shard
        // memo sharing, so its statistics legitimately differ.
        assert!(split.stats().states_explored >= default.stats().states_explored);
    }

    #[test]
    fn scratch_arenas_are_parked_between_calls() {
        let checker = Checker::new(0i64);
        assert_eq!(checker.idle_scratch_arenas(), 0);
        let _ = checker.check(&seq_history());
        let warm = checker.idle_scratch_arenas();
        assert!(warm >= 1, "checks must park their arenas");
        let _ = checker.check(&stale_history());
        assert_eq!(checker.idle_scratch_arenas(), warm, "arenas are reused");
        let cold = Checker::builder(0i64).scratch_reuse(false).build();
        let _ = cold.check(&seq_history());
        assert_eq!(cold.idle_scratch_arenas(), 0);
    }

    #[test]
    fn enumerate_and_linearizations_agree() {
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        b.respond_write(w0);
        b.respond_write(w1);
        let h = b.build();
        let checker = Checker::new(0i64);
        let eager: Vec<Vec<_>> = checker
            .enumerate(&h, usize::MAX)
            .unwrap()
            .iter()
            .map(SeqHistory::op_ids)
            .collect();
        let streamed: Vec<Vec<_>> = checker
            .linearizations(&h)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(eager, streamed);
        assert!(eager.len() >= 2);
    }

    #[test]
    fn materialize_completes_pending_operations() {
        let mut b = HistoryBuilder::new();
        let _w = b.invoke_write(ProcessId(0), R, 7i64);
        b.read(ProcessId(1), R, 7i64);
        let h = b.build();
        let checker = Checker::new(0i64);
        let mut lins = checker.linearizations(&h);
        let order = lins.next().unwrap().unwrap();
        let seq = lins.materialize(&order);
        assert!(seq.is_linearization_of(&h, &0));
    }
}
