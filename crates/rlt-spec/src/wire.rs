//! Wire codec for [`History`] and [`Verdict`]: a line-oriented text grammar for
//! histories (the request side) and a stable JSON rendering for verdicts (the
//! response side).
//!
//! The text grammar mirrors the `Schedule` `Display`/`parse` style in `rlt-mp`:
//! one operation per line, `#` comment lines and blank lines ignored, and parse
//! errors carrying the 1-based line number of the offending line. A formatted
//! history round-trips through [`parse_history`] bit-identically, which the
//! proptest pin in `tests/wire.rs` holds in place.
//!
//! Grammar, one operation per line:
//!
//! ```text
//! op<id> p<process> R<register> write <value> @ t<inv>..t<resp>
//! op<id> p<process> R<register> read  <value> @ t<inv>..
//! ```
//!
//! A trailing `t<resp>` is omitted for pending operations. Read values use `?`
//! for a pending/unobserved return ([`OpKind::Read`]`(None)`). Values use the
//! [`Value`] `Display` forms: `init`, `⊥` (accepted also as `bot`), `7`,
//! `[0,3]`, `(5#2)` — none contain whitespace, so the line tokenizes on spaces.
//!
//! [`parse_history`] pre-validates everything [`History::from_operations`]
//! asserts (duplicate ids, duplicate event times, response ≤ invocation) and
//! reports those as line-numbered [`WireError`]s instead of panicking, so a
//! service can feed untrusted request bodies straight into it.

use crate::checker::Verdict;
use crate::history::History;
use crate::ids::{OpId, ProcessId, RegisterId, Time};
use crate::op::{OpKind, Operation};
use crate::sequential::SeqHistory;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A line-numbered wire-format parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WireError {}

/// Formats one value in its wire form — the [`Value`] `Display` form.
fn format_value(v: &Value) -> String {
    v.to_string()
}

/// Parses one value token in its wire form.
fn parse_value(tok: &str) -> Result<Value, String> {
    match tok {
        "init" => return Ok(Value::Init),
        "⊥" | "bot" => return Ok(Value::Bot),
        _ => {}
    }
    if let Some(inner) = tok.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let (a, b) = inner
            .split_once(',')
            .ok_or_else(|| format!("bad pair value `{tok}`: expected `[a,b]`"))?;
        let a = a
            .parse()
            .map_err(|_| format!("bad pair component `{a}` in `{tok}`"))?;
        let b = b
            .parse()
            .map_err(|_| format!("bad pair component `{b}` in `{tok}`"))?;
        return Ok(Value::Pair(a, b));
    }
    if let Some(inner) = tok.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
        let (val, tag) = inner
            .split_once('#')
            .ok_or_else(|| format!("bad tagged value `{tok}`: expected `(val#tag)`"))?;
        let val = val
            .parse()
            .map_err(|_| format!("bad tagged payload `{val}` in `{tok}`"))?;
        let tag = tag
            .parse()
            .map_err(|_| format!("bad tag `{tag}` in `{tok}`"))?;
        return Ok(Value::Tagged { val, tag });
    }
    tok.parse()
        .map(Value::Int)
        .map_err(|_| format!("bad value `{tok}`"))
}

/// Parses a prefixed id token like `op3` / `p0` / `R1` / `t9`.
fn parse_prefixed(tok: &str, prefix: &str, what: &str) -> Result<u64, String> {
    tok.strip_prefix(prefix)
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("bad {what} `{tok}`: expected `{prefix}<n>`"))
}

/// Formats a [`History`] in the wire text grammar, one operation per line.
///
/// The output parses back ([`parse_history`]) to an equal history.
#[must_use]
pub fn format_history(history: &History<Value>) -> String {
    let mut out = String::new();
    for op in history.operations() {
        let (verb, value) = match &op.kind {
            OpKind::Write(v) => ("write", format_value(v)),
            OpKind::Read(Some(v)) => ("read", format_value(v)),
            OpKind::Read(None) => ("read", "?".to_string()),
        };
        let resp = op
            .responded_at
            .map_or(String::new(), |t| format!("t{}", t.0));
        out.push_str(&format!(
            "op{} {} {} {verb} {value} @ t{}..{resp}\n",
            op.id.0, op.process, op.register, op.invoked_at.0
        ));
    }
    out
}

/// Parses the wire text grammar into a [`History`].
///
/// Blank lines and lines starting with `#` are ignored. Every constraint
/// [`History::from_operations`] would assert is checked here first and reported
/// as a line-numbered [`WireError`], so this never panics on malformed input.
pub fn parse_history(text: &str) -> Result<History<Value>, WireError> {
    let mut ops: Vec<Operation<Value>> = Vec::new();
    let mut ids: BTreeSet<u64> = BTreeSet::new();
    let mut times: BTreeSet<u64> = BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| WireError {
            line: idx + 1,
            message,
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let [id, process, register, verb, value, at, span] = toks[..] else {
            return Err(err(format!(
                "expected `op<id> p<n> R<n> write|read <value> @ t<inv>..[t<resp>]`, got {} token(s)",
                toks.len()
            )));
        };
        let id = parse_prefixed(id, "op", "operation id").map_err(&err)?;
        let process = parse_prefixed(process, "p", "process id").map_err(&err)?;
        let register = parse_prefixed(register, "R", "register id").map_err(&err)?;
        if at != "@" {
            return Err(err(format!(
                "expected `@` before the time span, got `{at}`"
            )));
        }
        let (inv, resp) = span.split_once("..").ok_or_else(|| {
            err(format!(
                "bad time span `{span}`: expected `t<inv>..[t<resp>]`"
            ))
        })?;
        let inv = parse_prefixed(inv, "t", "invocation time").map_err(&err)?;
        let resp = if resp.is_empty() {
            None
        } else {
            Some(parse_prefixed(resp, "t", "response time").map_err(&err)?)
        };
        let kind = match verb {
            "write" => OpKind::Write(parse_value(value).map_err(&err)?),
            "read" if value == "?" => OpKind::Read(None),
            "read" => OpKind::Read(Some(parse_value(value).map_err(&err)?)),
            other => {
                return Err(err(format!(
                    "bad verb `{other}`: expected `write` or `read`"
                )))
            }
        };
        if !ids.insert(id) {
            return Err(err(format!("duplicate operation id `op{id}`")));
        }
        if !times.insert(inv) {
            return Err(err(format!("duplicate event time `t{inv}`")));
        }
        if let Some(r) = resp {
            if r <= inv {
                return Err(err(format!(
                    "response time `t{r}` does not follow invocation time `t{inv}`"
                )));
            }
            if !times.insert(r) {
                return Err(err(format!("duplicate event time `t{r}`")));
            }
        }
        ops.push(Operation {
            id: OpId(id),
            process: ProcessId(process as usize),
            register: RegisterId(register as usize),
            kind,
            invoked_at: Time(inv),
            responded_at: resp.map(Time),
        });
    }
    Ok(History::from_operations(ops))
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a witness linearization as a JSON array of operation objects, in
/// linearization order.
fn witness_to_json(witness: &SeqHistory<Value>) -> String {
    let mut out = String::from("[");
    for (i, op) in witness.operations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (kind, value) = match &op.kind {
            OpKind::Write(v) => ("write", format_value(v)),
            OpKind::Read(Some(v)) => ("read", format_value(v)),
            OpKind::Read(None) => ("read", "?".to_string()),
        };
        out.push_str(&format!(
            "{{\"op\":{},\"process\":{},\"register\":{},\"kind\":\"{kind}\",\"value\":\"{}\"}}",
            op.id.0,
            op.process.0,
            op.register.0,
            json_escape(&value)
        ));
    }
    out.push(']');
    out
}

/// Renders a [`Verdict`] as stable JSON: decision, witness (or `null`), and the
/// full deterministic counter set.
///
/// The rendering is byte-stable — fixed key order, no whitespace — so two
/// verdicts are equal iff their JSON strings are equal. The server's
/// differential pin compares HTTP responses against direct [`Checker::check`]
/// calls by exactly this string equality.
///
/// [`Checker::check`]: crate::checker::Checker::check
#[must_use]
pub fn verdict_to_json(verdict: &Verdict<Value>) -> String {
    let decision = match verdict.outcome() {
        Ok(true) => "true",
        Ok(false) => "false",
        Err(_) => "null",
    };
    let witness = verdict
        .witness()
        .map_or_else(|| "null".to_string(), witness_to_json);
    let stats = verdict.stats();
    format!(
        "{{\"decision\":{decision},\"witness\":{witness},\"stats\":{{\
         \"states_explored\":{},\"states_memoized\":{},\"enumeration_nodes\":{},\
         \"memo_probes\":{},\"memo_hits\":{},\"memo_arena_high_water\":{}}}}}",
        stats.states_explored,
        stats.states_memoized,
        stats.enumeration_nodes,
        stats.memo.probes,
        stats.memo.hits,
        stats.memo.arena_high_water
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::history::HistoryBuilder;

    fn sample() -> History<Value> {
        let mut b = HistoryBuilder::new();
        let r0 = RegisterId(0);
        let r1 = RegisterId(1);
        let w = b.invoke_write(ProcessId(0), r0, Value::Int(1));
        let r = b.invoke_read(ProcessId(1), r0);
        b.respond_write(w);
        b.respond_read(r, Value::Int(1));
        let w2 = b.invoke_write(ProcessId(2), r1, Value::Pair(0, 3));
        b.respond_write(w2);
        let pending = b.invoke_read(ProcessId(0), r1);
        let _ = pending;
        b.build()
    }

    #[test]
    fn round_trips_sample() {
        let h = sample();
        let text = format_history(&h);
        let back = parse_history(&text).expect("round trip parses");
        assert_eq!(h.operations(), back.operations());
    }

    #[test]
    fn parses_all_value_forms() {
        let text = "op0 p0 R0 write init @ t1..t2\n\
                    op1 p0 R0 write ⊥ @ t3..t4\n\
                    op2 p0 R0 write bot @ t5..t6\n\
                    op3 p0 R0 write -7 @ t7..t8\n\
                    op4 p0 R0 write [1,-2] @ t9..t10\n\
                    op5 p0 R0 write (5#2) @ t11..t12\n\
                    op6 p0 R0 read ? @ t13..\n";
        let h = parse_history(text).expect("parses");
        let kinds: Vec<_> = h.operations().iter().map(|op| op.kind.clone()).collect();
        assert_eq!(kinds[0], OpKind::Write(Value::Init));
        assert_eq!(kinds[1], OpKind::Write(Value::Bot));
        assert_eq!(kinds[2], OpKind::Write(Value::Bot));
        assert_eq!(kinds[3], OpKind::Write(Value::Int(-7)));
        assert_eq!(kinds[4], OpKind::Write(Value::Pair(1, -2)));
        assert_eq!(kinds[5], OpKind::Write(Value::Tagged { val: 5, tag: 2 }));
        assert_eq!(kinds[6], OpKind::Read(None));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n  op0 p0 R0 write 1 @ t1..t2  \n";
        let h = parse_history(text).expect("parses");
        assert_eq!(h.operations().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("op0 p0 R0 write 1 @ t1..t2\nbogus line", 2, "token"),
            ("x0 p0 R0 write 1 @ t1..t2", 1, "operation id"),
            ("op0 q0 R0 write 1 @ t1..t2", 1, "process id"),
            ("op0 p0 S0 write 1 @ t1..t2", 1, "register id"),
            ("op0 p0 R0 poke 1 @ t1..t2", 1, "verb"),
            ("op0 p0 R0 write zap @ t1..t2", 1, "value"),
            ("op0 p0 R0 write 1 % t1..t2", 1, "`@`"),
            ("op0 p0 R0 write 1 @ t1", 1, "time span"),
            ("op0 p0 R0 write 1 @ t2..t1", 1, "does not follow"),
            (
                "op0 p0 R0 write 1 @ t1..t2\nop0 p0 R0 write 1 @ t3..t4",
                2,
                "duplicate operation id",
            ),
            (
                "op0 p0 R0 write 1 @ t1..t2\nop1 p0 R0 write 1 @ t1..t4",
                2,
                "duplicate event time",
            ),
        ];
        for (text, line, needle) in cases {
            let e = parse_history(text).expect_err(text);
            assert_eq!(e.line, line, "{text}");
            assert!(e.message.contains(needle), "{text} → {}", e.message);
            assert!(e.to_string().starts_with(&format!("history line {line}:")));
        }
    }

    #[test]
    fn reads_with_question_mark_only_for_read() {
        let e = parse_history("op0 p0 R0 write ? @ t1..t2").expect_err("write ? is bad");
        assert!(e.message.contains("bad value"));
    }

    #[test]
    fn verdict_json_shapes() {
        let h = sample();
        let checker = Checker::builder(Value::Init).witness(true).build();
        let v = checker.check(&h);
        let json = verdict_to_json(&v);
        assert!(json.starts_with("{\"decision\":true,\"witness\":["));
        assert!(json.contains("\"states_explored\":"));
        assert!(json.contains("\"memo_arena_high_water\":"));

        let plain = Checker::builder(Value::Init)
            .witness(false)
            .build()
            .check(&h);
        let json = verdict_to_json(&plain);
        assert!(json.starts_with("{\"decision\":true,\"witness\":null,"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
