//! Identifier newtypes shared by every layer: processes, registers, operations, and
//! logical time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a process in the system.
///
/// The paper indexes processes `p0, p1, ..., p_{n-1}`; the wrapped value is that index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// Identifier of a shared register.
///
/// Histories may span several registers (Algorithm 1 uses three: `R1`, `R2`, and `C`);
/// linearizability is checked over the combined multi-register history.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RegisterId(pub usize);

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<usize> for RegisterId {
    fn from(value: usize) -> Self {
        RegisterId(value)
    }
}

/// Unique identifier of an operation within a [`crate::History`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Discrete logical time used to order invocation and response events.
///
/// Times are strictly increasing event counters assigned by the history recorder
/// (simulator or [`crate::HistoryBuilder`]); two events never share a time, which keeps
/// real-time precedence (Definition 1) unambiguous.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// The smallest time value.
    pub const ZERO: Time = Time(0);

    /// Returns the next time tick.
    #[must_use]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(value: u64) -> Self {
        Time(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_order() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert!(ProcessId(1) < ProcessId(2));
        assert_eq!(ProcessId::from(7), ProcessId(7));
    }

    #[test]
    fn register_id_display_and_order() {
        assert_eq!(RegisterId(0).to_string(), "R0");
        assert!(RegisterId(0) < RegisterId(5));
        assert_eq!(RegisterId::from(2), RegisterId(2));
    }

    #[test]
    fn time_next_is_strictly_increasing() {
        let t = Time::ZERO;
        assert!(t < t.next());
        assert_eq!(t.next(), Time(1));
        assert_eq!(Time::from(9).next(), Time(10));
    }

    #[test]
    fn op_id_display() {
        assert_eq!(OpId(42).to_string(), "op42");
    }

    #[test]
    fn ids_are_hashable_and_copy() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(OpId(1));
        set.insert(OpId(1));
        assert_eq!(set.len(), 1);
        let t = Time(5);
        let t2 = t; // Copy
        assert_eq!(t, t2);
    }
}
