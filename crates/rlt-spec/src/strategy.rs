//! Linearization *strategies* and prefix-property checkers (Definitions 3 and 4).
//!
//! A linearization function `f` maps each history `H` of an implementation to a
//! sequential history `f(H)`. Strong linearizability (Definition 3) additionally
//! requires that `f(G)` is a prefix of `f(H)` whenever `G` is a prefix of `H`; write
//! strong-linearizability (Definition 4) requires this only of the subsequence of write
//! operations. This module checks those prefix properties for a concrete strategy over
//! all prefixes of a given history.

use crate::history::History;
use crate::ids::{OpId, Time};
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;
use std::fmt;

/// A deterministic mapping from histories to sequential histories — the executable
/// counterpart of a linearization function `f`.
pub trait LinearizationStrategy<V> {
    /// Produces the linearization of `h`, or `None` if the strategy cannot linearize it
    /// (which itself disproves that the strategy is a linearization function for the
    /// history set containing `h`).
    fn linearize(&self, h: &History<V>) -> Option<SeqHistory<V>>;
}

impl<V, F> LinearizationStrategy<V> for F
where
    F: Fn(&History<V>) -> Option<SeqHistory<V>>,
{
    fn linearize(&self, h: &History<V>) -> Option<SeqHistory<V>> {
        self(h)
    }
}

/// A violation of property (L) or (P) found while checking a strategy over the prefixes
/// of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixViolation {
    /// The cut-off time of the prefix `G` at which the violation was detected.
    pub prefix_time: Time,
    /// Human-readable description of what went wrong.
    pub reason: String,
    /// The (write) sequence produced for the prefix.
    pub prefix_sequence: Vec<OpId>,
    /// The (write) sequence produced for the extension.
    pub extension_sequence: Vec<OpId>,
}

impl fmt::Display for PrefixViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix property violated at {}: {} (prefix sequence {:?}, extension sequence {:?})",
            self.prefix_time, self.reason, self.prefix_sequence, self.extension_sequence
        )
    }
}

/// Checks that `strategy` behaves as a **write strong-linearization function**
/// (Definition 4) across every prefix of `history`:
///
/// * property (L): `f(G)` is a valid linearization of each prefix `G`;
/// * property (P): the write sequence of `f(G)` is a prefix of the write sequence of
///   `f(G')` for consecutive prefixes `G ⊑ G'` (and hence, by transitivity, for every
///   pair of prefixes).
///
/// Returns `Ok(())` or the first violation found.
pub fn check_write_strong_prefix_property<V: RegisterValue>(
    strategy: &dyn LinearizationStrategy<V>,
    history: &History<V>,
    init: &V,
) -> Result<(), PrefixViolation> {
    check_prefix_property(strategy, history, init, PrefixMode::WritesOnly)
}

/// Checks that `strategy` behaves as a **strong linearization function** (Definition 3)
/// across every prefix of `history`: property (L) plus the prefix property over the
/// *entire* operation sequence.
pub fn check_strong_prefix_property<V: RegisterValue>(
    strategy: &dyn LinearizationStrategy<V>,
    history: &History<V>,
    init: &V,
) -> Result<(), PrefixViolation> {
    check_prefix_property(strategy, history, init, PrefixMode::AllOperations)
}

/// Checks the paper's generalized notion (Section 7): **strong linearizability with
/// respect to a subset of operations `O`** — the prefix property is required only of the
/// subsequence of operations selected by `in_subset`.
///
/// `check_write_strong_prefix_property` is the special case where `in_subset` selects
/// the write operations; `check_strong_prefix_property` is the special case where it
/// selects everything.
pub fn check_subset_strong_prefix_property<V: RegisterValue>(
    strategy: &dyn LinearizationStrategy<V>,
    history: &History<V>,
    init: &V,
    in_subset: &dyn Fn(&crate::op::Operation<V>) -> bool,
) -> Result<(), PrefixViolation> {
    check_prefix_property(strategy, history, init, PrefixMode::Subset(in_subset))
}

enum PrefixMode<'a, V> {
    WritesOnly,
    AllOperations,
    Subset(&'a dyn Fn(&crate::op::Operation<V>) -> bool),
}

impl<V> PrefixMode<'_, V> {
    fn project(&self, seq: &SeqHistory<V>) -> Vec<OpId>
    where
        V: RegisterValue,
    {
        match self {
            PrefixMode::WritesOnly => seq.write_ids(),
            PrefixMode::AllOperations => seq.op_ids(),
            PrefixMode::Subset(select) => seq
                .operations()
                .iter()
                .filter(|o| select(o))
                .map(|o| o.id)
                .collect(),
        }
    }
}

fn check_prefix_property<V: RegisterValue>(
    strategy: &dyn LinearizationStrategy<V>,
    history: &History<V>,
    init: &V,
    mode: PrefixMode<'_, V>,
) -> Result<(), PrefixViolation> {
    let mut times = history.event_times();
    times.insert(0, Time::ZERO);
    let mut prev: Option<(Time, SeqHistory<V>)> = None;
    for t in times {
        let prefix = history.prefix_at(t);
        let Some(seq) = strategy.linearize(&prefix) else {
            return Err(PrefixViolation {
                prefix_time: t,
                reason: "strategy failed to linearize the prefix (property L violated)".to_string(),
                prefix_sequence: Vec::new(),
                extension_sequence: Vec::new(),
            });
        };
        if !seq.is_linearization_of(&prefix, init) {
            return Err(PrefixViolation {
                prefix_time: t,
                reason: "strategy output is not a valid linearization of the prefix \
                         (property L violated)"
                    .to_string(),
                prefix_sequence: seq.op_ids(),
                extension_sequence: Vec::new(),
            });
        }
        if let Some((pt, prev_seq)) = &prev {
            let a = mode.project(prev_seq);
            let b = mode.project(&seq);
            let ok = a.len() <= b.len() && a == b[..a.len()];
            if !ok {
                return Err(PrefixViolation {
                    prefix_time: *pt,
                    reason: match mode {
                        PrefixMode::WritesOnly => {
                            "write sequence of f(G) is not a prefix of the write sequence \
                             of f(H) (property P of Definition 4 violated)"
                        }
                        PrefixMode::AllOperations => {
                            "f(G) is not a prefix of f(H) (property P of Definition 3 violated)"
                        }
                        PrefixMode::Subset(_) => {
                            "the selected subsequence of f(G) is not a prefix of the selected \
                             subsequence of f(H) (generalized property P violated)"
                        }
                    }
                    .to_string(),
                    prefix_sequence: a,
                    extension_sequence: b,
                });
            }
        }
        prev = Some((t, seq));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::history::HistoryBuilder;
    use crate::ids::{ProcessId, RegisterId};

    const R: RegisterId = RegisterId(0);

    /// A strategy that linearizes writes by invocation time and reads right after the
    /// write they observed — valid (and prefix-stable) for the simple histories below.
    fn invocation_order_strategy(h: &History<i64>) -> Option<SeqHistory<i64>> {
        Checker::new(0i64).check(h).into_witness()
    }

    /// A deliberately unstable strategy: the order of two concurrent writes flips once
    /// the history grows past 3 operations. It is a perfectly fine linearization
    /// function for each individual history but violates the write-prefix property.
    struct Flipper;

    impl LinearizationStrategy<i64> for Flipper {
        fn linearize(&self, h: &History<i64>) -> Option<SeqHistory<i64>> {
            let mut writes: Vec<_> = h.writes().cloned().collect();
            writes.sort_by_key(|w| w.invoked_at);
            if h.len() >= 3 {
                writes.reverse();
            }
            let mut completed: Vec<_> = writes
                .into_iter()
                .map(|mut w| {
                    if w.responded_at.is_none() {
                        w.responded_at = Some(h.max_time().next());
                    }
                    w
                })
                .collect();
            // Append completed reads after all writes if their value matches the last
            // write; this keeps the toy histories legal.
            for r in h.reads().filter(|r| r.is_complete()) {
                completed.push(r.clone());
            }
            Some(SeqHistory::from_ops(completed))
        }
    }

    #[test]
    fn checker_based_strategy_passes_on_sequential_history() {
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();
        assert!(check_write_strong_prefix_property(&invocation_order_strategy, &h, &0).is_ok());
    }

    #[test]
    fn flipping_strategy_violates_write_prefix_property() {
        // Three mutually concurrent writes: every ordering is a valid linearization of
        // every prefix, so property (L) holds throughout, but the flip after the third
        // invocation breaks property (P) of Definition 4.
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        let w2 = b.invoke_write(ProcessId(2), R, 3i64);
        b.respond_write(w0);
        b.respond_write(w1);
        b.respond_write(w2);
        let h = b.build();
        let err = check_write_strong_prefix_property(&Flipper, &h, &0)
            .expect_err("flip must be detected");
        assert!(err.reason.contains("Definition 4"));
        assert!(err.to_string().contains("prefix property violated"));
    }

    #[test]
    fn strong_property_is_stricter_than_write_strong() {
        // A strategy that keeps write order stable but moves a read earlier when the
        // history grows: write strong-linearizable but not strongly linearizable.
        const B: RegisterId = RegisterId(1);
        struct ReadMover;
        impl LinearizationStrategy<i64> for ReadMover {
            fn linearize(&self, h: &History<i64>) -> Option<SeqHistory<i64>> {
                let mut writes: Vec<_> = h.writes().filter(|w| w.is_complete()).cloned().collect();
                writes.sort_by_key(|w| w.invoked_at);
                let reads: Vec<_> = h.reads().filter(|r| r.is_complete()).cloned().collect();
                let mut ops = Vec::new();
                if h.len() >= 3 {
                    // Reads (of register B's initial value) placed before the writes.
                    ops.extend(reads.iter().cloned());
                    ops.extend(writes.iter().cloned());
                } else {
                    ops.extend(writes.iter().cloned());
                    ops.extend(reads.iter().cloned());
                }
                Some(SeqHistory::from_ops(ops))
            }
        }

        // The read targets register B (and returns its initial value) while the writes
        // target register A, so legality never constrains the read's position; only the
        // prefix properties distinguish the two notions.
        let mut b = HistoryBuilder::new();
        let r = b.invoke_read(ProcessId(1), B);
        let w = b.invoke_write(ProcessId(0), R, 1i64);
        b.respond_read(r, 0i64);
        b.respond_write(w);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();

        assert!(check_write_strong_prefix_property(&ReadMover, &h, &0).is_ok());
        assert!(check_strong_prefix_property(&ReadMover, &h, &0).is_err());
    }

    #[test]
    fn subset_strong_generalizes_both_notions() {
        // The flipping strategy over three concurrent writes (as above): the write
        // subset detects the violation, the read subset does not (there are no reads).
        let mut b = HistoryBuilder::new();
        let w0 = b.invoke_write(ProcessId(0), R, 1i64);
        let w1 = b.invoke_write(ProcessId(1), R, 2i64);
        let w2 = b.invoke_write(ProcessId(2), R, 3i64);
        b.respond_write(w0);
        b.respond_write(w1);
        b.respond_write(w2);
        let h = b.build();

        let writes_only = |o: &crate::op::Operation<i64>| o.is_write();
        let reads_only = |o: &crate::op::Operation<i64>| o.is_read();

        let err = check_subset_strong_prefix_property(&Flipper, &h, &0, &writes_only)
            .expect_err("write subset must detect the flip");
        assert!(err.reason.contains("generalized property P"));
        assert!(check_subset_strong_prefix_property(&Flipper, &h, &0, &reads_only).is_ok());

        // Consistency with the dedicated checkers.
        assert_eq!(
            check_write_strong_prefix_property(&Flipper, &h, &0).is_err(),
            check_subset_strong_prefix_property(&Flipper, &h, &0, &writes_only).is_err()
        );
        let everything = |_: &crate::op::Operation<i64>| true;
        assert_eq!(
            check_strong_prefix_property(&Flipper, &h, &0).is_err(),
            check_subset_strong_prefix_property(&Flipper, &h, &0, &everything).is_err()
        );
    }

    #[test]
    fn strategy_that_fails_to_linearize_is_an_l_violation() {
        struct Refuses;
        impl LinearizationStrategy<i64> for Refuses {
            fn linearize(&self, h: &History<i64>) -> Option<SeqHistory<i64>> {
                if h.len() >= 2 {
                    None
                } else {
                    Some(SeqHistory::from_ops(
                        h.completed().cloned().collect::<Vec<_>>(),
                    ))
                }
            }
        }
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.write(ProcessId(0), R, 2i64);
        let h = b.build();
        let err = check_write_strong_prefix_property(&Refuses, &h, &0).unwrap_err();
        assert!(err.reason.contains("property L"));
    }

    #[test]
    fn closure_strategies_implement_the_trait() {
        let strategy = |h: &History<i64>| Checker::new(0i64).check(h).into_witness();
        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 5i64);
        let h = b.build();
        assert!(strategy.linearize(&h).is_some());
    }
}
