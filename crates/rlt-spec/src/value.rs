//! A concrete register value type covering every value domain the paper's algorithms
//! use, plus the trait bound alias used by the generic checkers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hash;

/// Trait alias for value types the checkers can handle.
///
/// The checkers are generic: any cloneable, totally comparable, hashable value type
/// works. [`Value`] is a ready-made concrete choice.
pub trait RegisterValue: Clone + Eq + Ord + Hash + fmt::Debug {}

impl<T> RegisterValue for T where T: Clone + Eq + Ord + Hash + fmt::Debug {}

/// A concrete register value sufficient for every algorithm in the paper.
///
/// * `Init` — the register's initial value (the "0" of Algorithm 1's `R2` and `C`).
/// * `Bot` — the `⊥` written by players in lines 19–20 of Algorithm 1.
/// * `Int(i)` — plain integer values (counter contents of `R2`, coin results in `C`).
/// * `Pair(i, j)` — the `[i, j]` tuples written into `R1` in line 3 of Algorithm 1.
/// * `Tagged { val, tag }` — a value paired with an opaque integer tag, used by the
///   MWMR constructions where readers return `(v, ts)` tuples.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The register's initial value.
    #[default]
    Init,
    /// The distinguished `⊥` value.
    Bot,
    /// A plain integer.
    Int(i64),
    /// A pair `[i, j]` as written to `R1` by the hosts of Algorithm 1.
    Pair(i64, i64),
    /// A value carrying an opaque tag (e.g. a flattened timestamp).
    Tagged {
        /// The payload value.
        val: i64,
        /// The tag distinguishing the write that produced the payload.
        tag: u64,
    },
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Init => write!(f, "init"),
            Value::Bot => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Pair(a, b) => write!(f, "[{a},{b}]"),
            Value::Tagged { val, tag } => write!(f, "({val}#{tag})"),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<(i64, i64)> for Value {
    fn from(value: (i64, i64)) -> Self {
        Value::Pair(value.0, value.1)
    }
}

impl Value {
    /// Returns `true` if this value is the distinguished `⊥`.
    #[must_use]
    pub fn is_bot(&self) -> bool {
        matches!(self, Value::Bot)
    }

    /// Returns the integer payload if this value is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the pair payload if this value is a `Pair`.
    #[must_use]
    pub fn as_pair(&self) -> Option<(i64, i64)> {
        match self {
            Value::Pair(a, b) => Some((*a, *b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        assert_eq!(Value::Init.to_string(), "init");
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Pair(0, 3).to_string(), "[0,3]");
        assert_eq!(Value::Tagged { val: 5, tag: 2 }.to_string(), "(5#2)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4), Value::Int(4));
        assert_eq!(Value::from((1, 2)), Value::Pair(1, 2));
    }

    #[test]
    fn accessors() {
        assert!(Value::Bot.is_bot());
        assert!(!Value::Init.is_bot());
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bot.as_int(), None);
        assert_eq!(Value::Pair(1, 2).as_pair(), Some((1, 2)));
        assert_eq!(Value::Int(1).as_pair(), None);
    }

    #[test]
    fn default_is_init() {
        assert_eq!(Value::default(), Value::Init);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::Int(2),
            Value::Bot,
            Value::Init,
            Value::Pair(0, 1),
            Value::Int(1),
        ];
        vs.sort();
        // Sorting must not panic and must be stable under re-sorting.
        let again = {
            let mut c = vs.clone();
            c.sort();
            c
        };
        assert_eq!(vs, again);
    }
}
