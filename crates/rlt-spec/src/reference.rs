//! The original (pre-engine) recursive checker, kept as an executable specification.
//!
//! This is the Wing–Gong search exactly as it shipped before the [`crate::engine`]
//! rewrite: recursive, cloning a `(Vec<bool>, Vec<(RegisterId, V)>)` memo key at every
//! node, and rescanning real-time precedence in `O(n²)` to find candidates. It is kept
//! (not deleted) for two jobs:
//!
//! * **Differential testing** — the engine's verdicts are asserted equal to this
//!   implementation's on thousands of randomized histories (`tests/differential.rs`).
//! * **Baseline benchmarking** — `rlt-bench` measures the engine's speedup against
//!   this checker on the same workloads, so the before/after numbers in
//!   `EXPERIMENTS.md` stay reproducible from any checkout.
//!
//! Do not use it in production paths; [`crate::linearizability`] is faster on every
//! workload and identical in semantics.

use crate::history::History;
use crate::ids::RegisterId;
use crate::op::{OpKind, Operation};
use crate::sequential::SeqHistory;
use crate::value::RegisterValue;
use std::collections::{BTreeMap, HashSet};

struct Searcher<'a, V> {
    ops: Vec<&'a Operation<V>>,
    // The pre-engine memo key, kept verbatim: this type *is* the baseline being
    // preserved (cloned bit-vector plus cloned state pairs at every node).
    #[allow(clippy::type_complexity)]
    visited: HashSet<(Vec<bool>, Vec<(RegisterId, V)>)>,
    states_explored: u64,
    state_limit: u64,
}

impl<'a, V: RegisterValue> Searcher<'a, V> {
    fn new(history: &'a History<V>, state_limit: u64) -> Self {
        // Keep completed operations and pending writes; drop pending reads.
        let ops: Vec<&Operation<V>> = history
            .operations()
            .iter()
            .filter(|o| o.is_complete() || o.is_write())
            .collect();
        Searcher {
            ops,
            visited: HashSet::new(),
            states_explored: 0,
            state_limit,
        }
    }

    fn search(
        &mut self,
        init: &V,
        taken: &mut Vec<bool>,
        state: &mut BTreeMap<RegisterId, V>,
        order: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        self.states_explored += 1;
        if self.states_explored > self.state_limit {
            return None;
        }
        if self
            .ops
            .iter()
            .enumerate()
            .all(|(i, o)| taken[i] || o.is_pending())
        {
            return Some(order.clone());
        }

        let memo_key = (
            taken.clone(),
            state
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<_>>(),
        );
        if !self.visited.insert(memo_key) {
            return None;
        }

        let candidate_idxs: Vec<usize> = (0..self.ops.len())
            .filter(|&i| !taken[i])
            .filter(|&i| {
                let oi = self.ops[i];
                (0..self.ops.len())
                    .filter(|&j| j != i && !taken[j])
                    .all(|j| !self.ops[j].precedes(oi))
            })
            .collect();

        for i in candidate_idxs {
            let op = self.ops[i];
            match &op.kind {
                OpKind::Write(v) => {
                    let prev = state.insert(op.register, v.clone());
                    taken[i] = true;
                    order.push(i);
                    if let Some(found) = self.search(init, taken, state, order) {
                        return Some(found);
                    }
                    order.pop();
                    taken[i] = false;
                    match prev {
                        Some(p) => {
                            state.insert(op.register, p);
                        }
                        None => {
                            state.remove(&op.register);
                        }
                    }
                }
                OpKind::Read(Some(v)) => {
                    let current = state.get(&op.register).unwrap_or(init);
                    if current == v {
                        taken[i] = true;
                        order.push(i);
                        if let Some(found) = self.search(init, taken, state, order) {
                            return Some(found);
                        }
                        order.pop();
                        taken[i] = false;
                    }
                }
                OpKind::Read(None) => unreachable!("pending reads are filtered out"),
            }
        }
        None
    }
}

/// The pre-engine `check_linearizable`, verbatim. Returns a witness if `history` is
/// linearizable within `state_limit` explored states.
#[must_use]
pub fn reference_check_linearizable<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    state_limit: u64,
) -> Option<SeqHistory<V>> {
    let mut searcher = Searcher::new(history, state_limit);
    let n = searcher.ops.len();
    let mut taken = vec![false; n];
    let mut state = BTreeMap::new();
    let mut order = Vec::new();
    let result = searcher.search(init, &mut taken, &mut state, &mut order);
    result.map(|order| {
        let ops = order
            .iter()
            .map(|&i| {
                let mut op = searcher.ops[i].clone();
                if op.responded_at.is_none() {
                    op.responded_at = Some(history.max_time().next());
                }
                op
            })
            .collect();
        SeqHistory::from_ops(ops)
    })
}

/// The pre-engine `enumerate_linearizations`, verbatim (unbounded recursion depth, no
/// work cap — only use on small histories).
#[must_use]
pub fn reference_enumerate_linearizations<V: RegisterValue>(
    history: &History<V>,
    init: &V,
    max_results: usize,
) -> Vec<SeqHistory<V>> {
    let ops: Vec<&Operation<V>> = history
        .operations()
        .iter()
        .filter(|o| o.is_complete() || o.is_write())
        .collect();
    let mut results = Vec::new();
    let mut taken = vec![false; ops.len()];
    let mut state: BTreeMap<RegisterId, V> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    enumerate_rec(
        &ops,
        init,
        &mut taken,
        &mut state,
        &mut order,
        &mut results,
        max_results,
    );
    results
        .into_iter()
        .map(|order| {
            let seq_ops = order
                .iter()
                .map(|&i| {
                    let mut op = ops[i].clone();
                    if op.responded_at.is_none() {
                        op.responded_at = Some(history.max_time().next());
                    }
                    op
                })
                .collect();
            SeqHistory::from_ops(seq_ops)
        })
        .collect()
}

fn enumerate_rec<V: RegisterValue>(
    ops: &[&Operation<V>],
    init: &V,
    taken: &mut Vec<bool>,
    state: &mut BTreeMap<RegisterId, V>,
    order: &mut Vec<usize>,
    results: &mut Vec<Vec<usize>>,
    max_results: usize,
) {
    if results.len() >= max_results {
        return;
    }
    if ops
        .iter()
        .enumerate()
        .all(|(i, o)| taken[i] || o.is_pending())
    {
        results.push(order.clone());
        // Keep exploring: linearizations that additionally include pending writes are
        // distinct and also valid, and are generated by the recursive calls below.
    }
    let candidate_idxs: Vec<usize> = (0..ops.len())
        .filter(|&i| !taken[i])
        .filter(|&i| {
            (0..ops.len())
                .filter(|&j| j != i && !taken[j])
                .all(|j| !ops[j].precedes(ops[i]))
        })
        .collect();
    for i in candidate_idxs {
        let op = ops[i];
        match &op.kind {
            OpKind::Write(v) => {
                let prev = state.insert(op.register, v.clone());
                taken[i] = true;
                order.push(i);
                enumerate_rec(ops, init, taken, state, order, results, max_results);
                order.pop();
                taken[i] = false;
                match prev {
                    Some(p) => {
                        state.insert(op.register, p);
                    }
                    None => {
                        state.remove(&op.register);
                    }
                }
            }
            OpKind::Read(Some(v)) => {
                let current = state.get(&op.register).unwrap_or(init);
                if current == v {
                    taken[i] = true;
                    order.push(i);
                    enumerate_rec(ops, init, taken, state, order, results, max_results);
                    order.pop();
                    taken[i] = false;
                }
            }
            OpKind::Read(None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::history::HistoryBuilder;
    use crate::ids::ProcessId;

    const R: RegisterId = RegisterId(0);

    #[test]
    fn reference_and_engine_agree_on_basic_cases() {
        let mut b = HistoryBuilder::new();
        let w = b.invoke_write(ProcessId(0), R, 1i64);
        let r = b.invoke_read(ProcessId(1), R);
        b.respond_read(r, 1i64);
        b.respond_write(w);
        let h = b.build();
        assert_eq!(
            reference_check_linearizable(&h, &0, u64::MAX).is_some(),
            Checker::new(0i64).check(&h).is_linearizable()
        );

        let mut b = HistoryBuilder::new();
        b.write(ProcessId(0), R, 1i64);
        b.read(ProcessId(1), R, 0i64);
        let h = b.build();
        assert!(reference_check_linearizable(&h, &0, u64::MAX).is_none());
        assert!(!Checker::new(0i64).check(&h).is_linearizable());
    }
}
