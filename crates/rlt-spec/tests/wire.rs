//! Property pin for the wire codec: formatted histories parse back bit-identically,
//! over the full [`Value`] domain and arbitrary pending/complete mixes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_spec::wire::{format_history, parse_history, verdict_to_json};
use rlt_spec::{Checker, History, HistoryBuilder, OpId, ProcessId, RegisterId, Value};

/// A random well-formed `History<Value>` hitting every value variant, with
/// roughly a third of invocations left pending.
fn random_value_history(seed: u64, max_ops: usize, registers: usize) -> History<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b: HistoryBuilder<Value> = HistoryBuilder::new();
    let mut open: Vec<(OpId, bool)> = Vec::new();
    let value = |rng: &mut StdRng| match rng.gen_range(0..5) {
        0 => Value::Init,
        1 => Value::Bot,
        2 => Value::Int(rng.gen_range(-3..4)),
        3 => Value::Pair(rng.gen_range(-2..3), rng.gen_range(-2..3)),
        _ => Value::Tagged {
            val: rng.gen_range(-2..3),
            tag: rng.gen_range(0..4),
        },
    };
    let n_ops = rng.gen_range(1..=max_ops);
    for _ in 0..n_ops {
        let p = ProcessId(rng.gen_range(0..4));
        let r = RegisterId(rng.gen_range(0..registers));
        if rng.gen_bool(0.5) {
            let v = value(&mut rng);
            open.push((b.invoke_write(p, r, v), false));
        } else {
            open.push((b.invoke_read(p, r), true));
        }
        while !open.is_empty() && rng.gen_bool(0.4) {
            let idx = rng.gen_range(0..open.len());
            let (id, is_read) = open.swap_remove(idx);
            if is_read {
                let v = value(&mut rng);
                b.respond_read(id, v);
            } else {
                b.respond_write(id);
            }
        }
    }
    let remaining = std::mem::take(&mut open);
    for (id, is_read) in remaining {
        if rng.gen_bool(0.5) {
            if is_read {
                let v = value(&mut rng);
                b.respond_read(id, v);
            } else {
                b.respond_write(id);
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// format → parse is the identity on operations, so the wire format loses
    /// nothing the checkers consume.
    #[test]
    fn wire_round_trip_is_identity(seed in 0u64..1_000_000) {
        let h = random_value_history(seed, 24, 3);
        let text = format_history(&h);
        let back = parse_history(&text).expect("formatted history must parse");
        prop_assert_eq!(h.operations(), back.operations());
    }

    /// Formatting is stable: a second format → parse → format cycle reproduces
    /// the exact byte string (the server's interning cache keys on these bytes).
    #[test]
    fn wire_format_is_stable(seed in 0u64..1_000_000) {
        let h = random_value_history(seed, 24, 3);
        let text = format_history(&h);
        let again = format_history(&parse_history(&text).expect("parses"));
        prop_assert_eq!(text, again);
    }

    /// Checking a parsed history yields the same JSON verdict as checking the
    /// original — the codec cannot perturb a verdict.
    #[test]
    fn parsed_history_checks_identically(seed in 0u64..1_000_000) {
        let h = random_value_history(seed, 16, 2);
        let back = parse_history(&format_history(&h)).expect("parses");
        let checker = Checker::builder(Value::Init).witness(true).build();
        prop_assert_eq!(
            verdict_to_json(&checker.check(&h)),
            verdict_to_json(&checker.check(&back))
        );
    }
}
