//! Shared corpus generator for the differential and parallel-determinism suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_spec::{History, HistoryBuilder, OpId, ProcessId, RegisterId};

/// Builds a random well-formed history with up to `max_ops` operations over
/// `registers` registers. Roughly a third of invocations never respond, and the value
/// domain is small so read values frequently collide with — and frequently
/// contradict — written values, exercising both verdicts.
pub fn random_history(seed: u64, max_ops: usize, registers: usize) -> History<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b: HistoryBuilder<i64> = HistoryBuilder::new();
    // (id, is_read) of operations that have been invoked but not responded.
    let mut open: Vec<(OpId, bool)> = Vec::new();
    let n_ops = rng.gen_range(1..=max_ops);
    for _ in 0..n_ops {
        let p = ProcessId(rng.gen_range(0..4));
        let r = RegisterId(rng.gen_range(0..registers));
        if rng.gen_bool(0.5) {
            let v = rng.gen_range(0..4) as i64;
            open.push((b.invoke_write(p, r, v), false));
        } else {
            open.push((b.invoke_read(p, r), true));
        }
        // Respond to a random open operation with probability 2/3.
        while !open.is_empty() && rng.gen_bool(0.4) {
            let idx = rng.gen_range(0..open.len());
            let (id, is_read) = open.swap_remove(idx);
            if is_read {
                b.respond_read(id, rng.gen_range(0..4) as i64);
            } else {
                b.respond_write(id);
            }
        }
    }
    // Respond to each remaining open op with probability 1/2; the rest stay pending.
    let remaining = std::mem::take(&mut open);
    for (id, is_read) in remaining {
        if rng.gen_bool(0.5) {
            if is_read {
                b.respond_read(id, rng.gen_range(0..4) as i64);
            } else {
                b.respond_write(id);
            }
        }
    }
    b.build()
}
