//! Parallel-determinism suite: the fork-join engine pinned to the sequential path,
//! through the [`Checker`] session API.
//!
//! The checker's contract is that thread policy is *unobservable* in results:
//! verdicts, witnesses, statistics, enumeration output, and family reports must be
//! bit-identical across [`ThreadPolicy::Sequential`], [`ThreadPolicy::Auto`] on pools
//! of any width, and [`ThreadPolicy::Fixed`] at any width. These tests diff the
//! parallel paths against the sequential policy on the same seeded corpus the
//! engine-vs-reference differential suite uses, plus dedicated corpora for the
//! small-budget replay path and the multi-register enumeration product.

mod common;

use common::random_history;
use rlt_spec::reference::reference_enumerate_linearizations;
use rlt_spec::{
    Checker, Engine, ExtensionFamily, HistoryBuilder, OpId, ProcessId, RegisterId, ThreadPolicy,
};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool")
}

fn checker(policy: ThreadPolicy) -> Checker<i64> {
    Checker::builder(0i64)
        .state_budget(u64::MAX)
        .threads(policy)
        .build()
}

#[test]
fn verdicts_are_bit_identical_across_thread_policies() {
    // The full 3,000-history differential corpus: every verdict field must match the
    // sequential checker exactly, under Fixed(2), Fixed(4), and Auto inside a pool.
    let histories: Vec<_> = (1..=3usize)
        .flat_map(|registers| {
            (0..1_000u64)
                .map(move |seed| random_history(seed * 3 + registers as u64, 10, registers))
        })
        .collect();
    let sequential_checker = checker(ThreadPolicy::Sequential);
    let sequential: Vec<_> = histories
        .iter()
        .map(|h| sequential_checker.check(h))
        .collect();
    for threads in [2usize, 4] {
        let fixed = checker(ThreadPolicy::Fixed(threads));
        let auto = checker(ThreadPolicy::Auto);
        let installed = pool(threads);
        for (i, h) in histories.iter().enumerate() {
            assert_eq!(
                fixed.check(h),
                sequential[i],
                "Fixed({threads}) diverged at history {i}: {h}"
            );
            assert_eq!(
                installed.install(|| auto.check(h)),
                sequential[i],
                "Auto in a {threads}-wide pool diverged at history {i}: {h}"
            );
        }
    }
}

#[test]
fn tiny_state_budgets_replay_identically() {
    // The budget-replay / sequential-fallback path: with budgets this small the
    // parallel pass frequently detects that the sequential pass would have run dry
    // mid-search and must reproduce its exact truncated statistics.
    for threads in [2usize, 4] {
        for seed in 0..300u64 {
            let h = random_history(seed + 5_000, 12, 3);
            for limit in [0u64, 1, 2, 5, 17, 64] {
                let sequential = Checker::builder(0i64)
                    .state_budget(limit)
                    .threads(ThreadPolicy::Sequential)
                    .build()
                    .check(&h);
                let parallel = Checker::builder(0i64)
                    .state_budget(limit)
                    .threads(ThreadPolicy::Fixed(threads))
                    .build()
                    .check(&h);
                assert_eq!(
                    parallel, sequential,
                    "seed {seed} limit {limit} threads {threads}: {h}"
                );
            }
        }
    }
}

#[test]
fn batch_verdicts_match_individual_verdicts_at_any_width() {
    let histories: Vec<_> = (0..200u64)
        .map(|seed| random_history(seed * 11 + 1, 10, 3))
        .collect();
    let solo_checker = checker(ThreadPolicy::Sequential);
    let solo: Vec<_> = histories.iter().map(|h| solo_checker.check(h)).collect();
    for policy in [
        ThreadPolicy::Sequential,
        ThreadPolicy::Auto,
        ThreadPolicy::Fixed(2),
        ThreadPolicy::Fixed(4),
    ] {
        let batch = checker(policy).check_many(&histories);
        assert_eq!(batch, solo, "batch diverged under {policy:?}");
    }
}

#[test]
fn within_register_sharding_is_bit_identical_across_thread_counts() {
    // The within-register subtree split on single-register histories: at a low split
    // threshold most of this corpus shards, and the speculative parallel path must
    // replay to the exact sequential outcome — verdict, witness, state counters, and
    // memo stats — at widths 1, 2, and 4 (width 1 covers the RLT_THREADS=1 CI job's
    // sequential collapse of the same code path).
    let histories: Vec<_> = (0..300u64)
        .map(|seed| random_history(seed * 7 + 11, 12, 1))
        .collect();
    for budget in [u64::MAX, 64] {
        let sequential_checker = Checker::builder(0i64)
            .state_budget(budget)
            .threads(ThreadPolicy::Sequential)
            .split_threshold(2)
            .build();
        let sequential: Vec<_> = histories
            .iter()
            .map(|h| sequential_checker.check(h))
            .collect();
        for threads in [1usize, 2, 4] {
            let fixed = Checker::builder(0i64)
                .state_budget(budget)
                .threads(ThreadPolicy::Fixed(threads))
                .split_threshold(2)
                .build();
            for (i, h) in histories.iter().enumerate() {
                assert_eq!(
                    fixed.check(h),
                    sequential[i],
                    "split search diverged: threads={threads} budget={budget} history {i}: {h}"
                );
            }
        }
    }
}

#[test]
fn multi_register_enumeration_matches_reference_exactly() {
    // The lazy interleaving product against the pre-engine reference enumerator on
    // three-register histories (the in-crate differential suite covers 1–2 registers):
    // same orders, same emission sequence.
    for seed in 0..300u64 {
        let h = random_history(seed * 13 + 3, 8, 3);
        let engine = Engine::new(&h, &0);
        let product: Vec<Vec<OpId>> = engine
            .enumerate(10_000, u64::MAX)
            .expect("within work cap")
            .iter()
            .map(|order| order.iter().map(|&i| engine.ops()[i].id).collect())
            .collect();
        let reference: Vec<Vec<OpId>> = reference_enumerate_linearizations(&h, &0, 10_000)
            .iter()
            .map(|s| s.op_ids())
            .collect();
        assert_eq!(
            product, reference,
            "enumeration diverged on seed {seed}: {h}"
        );
    }
}

#[test]
fn enumeration_output_is_independent_of_thread_count() {
    // Enumeration itself is sequential by design, but it is reached through
    // pool-installed call sites (the strong.rs family checks); pin the output anyway.
    let seq_pool = pool(1);
    let par_pool = pool(4);
    let checker = Checker::new(0i64);
    for seed in 0..100u64 {
        let h = random_history(seed * 17 + 7, 9, 2);
        let sequential = seq_pool.install(|| checker.enumerate(&h, 10_000));
        let parallel = par_pool.install(|| checker.enumerate(&h, 10_000));
        assert_eq!(sequential.unwrap(), parallel.unwrap(), "seed {seed}");
    }
}

#[test]
fn extension_family_reports_are_identical_across_thread_counts() {
    // The Theorem 13 miniature family (two conflicting extensions) through the lazy
    // member enumeration: the report — including which extension blocks each base
    // linearization and the enumeration node count — must not depend on pool width.
    const R: RegisterId = RegisterId(0);
    let mut b = HistoryBuilder::new();
    let w1 = b.invoke_write(ProcessId(1), R, 1i64);
    let w2 = b.invoke_write(ProcessId(2), R, 2i64);
    b.respond_write(w2);
    let base = b.snapshot();
    let mut ba = b.clone();
    ba.respond_write(w1);
    ba.read(ProcessId(3), R, 2i64);
    let ext_a = ba.build();
    let mut bb = b.clone();
    bb.respond_write(w1);
    bb.read(ProcessId(3), R, 1i64);
    let ext_b = bb.build();
    let family = ExtensionFamily::new(base, vec![ext_a, ext_b], 0i64);

    let baseline_ws = pool(1).install(|| family.check_write_strong(1_000));
    let baseline_strong = pool(1).install(|| family.check_strong(1_000));
    assert!(!baseline_ws.admits);
    for threads in [2usize, 4] {
        let pool = pool(threads);
        assert_eq!(
            pool.install(|| family.check_write_strong(1_000)),
            baseline_ws,
            "write-strong report diverged at {threads} threads"
        );
        assert_eq!(
            pool.install(|| family.check_strong(1_000)),
            baseline_strong,
            "strong report diverged at {threads} threads"
        );
    }
}
