//! Parallel-determinism suite: the fork-join engine pinned to the sequential path.
//!
//! The engine's contract is that thread count is *unobservable* in results: verdicts,
//! witnesses, statistics, enumeration output, and family reports must be bit-identical
//! across pools of width 1, 2, and N. These tests diff the parallel paths against
//! [`Engine::check_sequential`] / the single-threaded pool on the same seeded corpus
//! the engine-vs-reference differential suite uses, plus dedicated corpora for the
//! small-budget replay path and the multi-register enumeration product.

mod common;

use common::random_history;
use rlt_spec::linearizability::{check_linearizable_batch, check_linearizable_report};
use rlt_spec::reference::reference_enumerate_linearizations;
use rlt_spec::{Engine, ExtensionFamily, HistoryBuilder, OpId, ProcessId, RegisterId};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool")
}

#[test]
fn check_reports_are_bit_identical_across_thread_counts() {
    // The full 3,000-history differential corpus: every report field must match the
    // sequential engine exactly, on pools of width 2 and 4.
    let histories: Vec<_> = (1..=3usize)
        .flat_map(|registers| {
            (0..1_000u64)
                .map(move |seed| random_history(seed * 3 + registers as u64, 10, registers))
        })
        .collect();
    let sequential: Vec<_> = histories
        .iter()
        .map(|h| check_linearizable_report(h, &0, u64::MAX))
        .collect();
    for threads in [2usize, 4] {
        let pool = pool(threads);
        for (i, h) in histories.iter().enumerate() {
            let parallel = pool.install(|| check_linearizable_report(h, &0, u64::MAX));
            assert_eq!(
                parallel, sequential[i],
                "report diverged at history {i} with {threads} threads: {h}"
            );
        }
    }
}

#[test]
fn tiny_state_budgets_replay_identically() {
    // The budget-replay / sequential-fallback path: with budgets this small the
    // parallel pass frequently detects that the sequential pass would have run dry
    // mid-search and must reproduce its exact truncated statistics.
    for threads in [2usize, 4] {
        let pool = pool(threads);
        for seed in 0..300u64 {
            let h = random_history(seed + 5_000, 12, 3);
            for limit in [0u64, 1, 2, 5, 17, 64] {
                let engine = Engine::new(&h, &0);
                let sequential = engine.check_sequential(limit);
                let parallel = pool.install(|| engine.check(limit));
                assert_eq!(
                    parallel, sequential,
                    "seed {seed} limit {limit} threads {threads}: {h}"
                );
            }
        }
    }
}

#[test]
fn batch_reports_match_individual_reports_at_any_width() {
    let histories: Vec<_> = (0..200u64)
        .map(|seed| random_history(seed * 11 + 1, 10, 3))
        .collect();
    let solo: Vec<_> = histories
        .iter()
        .map(|h| check_linearizable_report(h, &0, u64::MAX))
        .collect();
    for threads in [1usize, 2, 4] {
        let pool = pool(threads);
        let batch = pool.install(|| check_linearizable_batch(&histories, &0, u64::MAX));
        assert_eq!(batch, solo, "batch diverged at {threads} threads");
    }
}

#[test]
fn multi_register_enumeration_matches_reference_exactly() {
    // The lazy interleaving product against the pre-engine reference enumerator on
    // three-register histories (the in-crate differential suite covers 1–2 registers):
    // same orders, same emission sequence.
    for seed in 0..300u64 {
        let h = random_history(seed * 13 + 3, 8, 3);
        let engine = Engine::new(&h, &0);
        let product: Vec<Vec<OpId>> = engine
            .enumerate(10_000, u64::MAX)
            .expect("within work cap")
            .iter()
            .map(|order| order.iter().map(|&i| engine.ops()[i].id).collect())
            .collect();
        let reference: Vec<Vec<OpId>> = reference_enumerate_linearizations(&h, &0, 10_000)
            .iter()
            .map(|s| s.op_ids())
            .collect();
        assert_eq!(
            product, reference,
            "enumeration diverged on seed {seed}: {h}"
        );
    }
}

#[test]
fn enumeration_output_is_independent_of_thread_count() {
    // Enumeration itself is sequential by design, but it is reached through
    // pool-installed call sites (the strong.rs family checks); pin the output anyway.
    let seq_pool = pool(1);
    let par_pool = pool(4);
    for seed in 0..100u64 {
        let h = random_history(seed * 17 + 7, 9, 2);
        let engine = Engine::new(&h, &0);
        let sequential = seq_pool.install(|| engine.enumerate(10_000, u64::MAX));
        let parallel = par_pool.install(|| engine.enumerate(10_000, u64::MAX));
        assert_eq!(sequential.unwrap(), parallel.unwrap(), "seed {seed}");
    }
}

#[test]
fn extension_family_reports_are_identical_across_thread_counts() {
    // The Theorem 13 miniature family (two conflicting extensions) through the
    // parallel member enumeration: the report — including which extension blocks each
    // base linearization — must not depend on pool width.
    const R: RegisterId = RegisterId(0);
    let mut b = HistoryBuilder::new();
    let w1 = b.invoke_write(ProcessId(1), R, 1i64);
    let w2 = b.invoke_write(ProcessId(2), R, 2i64);
    b.respond_write(w2);
    let base = b.snapshot();
    let mut ba = b.clone();
    ba.respond_write(w1);
    ba.read(ProcessId(3), R, 2i64);
    let ext_a = ba.build();
    let mut bb = b.clone();
    bb.respond_write(w1);
    bb.read(ProcessId(3), R, 1i64);
    let ext_b = bb.build();
    let family = ExtensionFamily::new(base, vec![ext_a, ext_b], 0i64);

    let baseline_ws = pool(1).install(|| family.check_write_strong(1_000));
    let baseline_strong = pool(1).install(|| family.check_strong(1_000));
    assert!(!baseline_ws.admits);
    for threads in [2usize, 4] {
        let pool = pool(threads);
        assert_eq!(
            pool.install(|| family.check_write_strong(1_000)),
            baseline_ws,
            "write-strong report diverged at {threads} threads"
        );
        assert_eq!(
            pool.install(|| family.check_strong(1_000)),
            baseline_strong,
            "strong report diverged at {threads} threads"
        );
    }
}
