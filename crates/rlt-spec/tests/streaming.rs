//! Streaming-enumeration suite: the lazy [`Linearizations`] iterator against the
//! eager enumeration, on the same seeded corpus the differential suite uses.
//!
//! Three contracts are pinned here:
//!
//! * **Bit-identity** — the iterator's emission order and contents equal the eager
//!   [`Checker::enumerate`] exactly, across the full 3,000-history corpus.
//! * **Laziness** — `take(1)` performs strictly less enumeration work than a full
//!   drain (measured by the exposed [`Linearizations::nodes_visited`] counter), and
//!   dropping the iterator mid-way is safe at any point.
//! * **Short-circuiting consumers** — [`ExtensionFamily`] checks driven by the
//!   streaming iterator visit strictly fewer enumeration nodes than draining
//!   `max_linearizations` orders per member, on families whose extensions match
//!   early.

mod common;

use common::random_history;
use rlt_spec::{
    Checker, ExtensionFamily, History, HistoryBuilder, Linearizations, OpId, ProcessId, RegisterId,
};

/// Pulls up to `max` orders from a fresh iterator (the eager per-member behavior of
/// the pre-streaming family check) and reports the node counter.
fn drained_nodes(checker: &Checker<i64>, h: &History<i64>, max: usize) -> u64 {
    let mut it = checker.linearizations(h);
    let mut pulled = 0usize;
    while pulled < max {
        match it.next() {
            Some(Ok(_)) => pulled += 1,
            Some(Err(err)) => panic!("unexpected work-cap error: {err}"),
            None => break,
        }
    }
    it.nodes_visited()
}

#[test]
fn streaming_emission_is_bit_identical_to_eager_across_the_corpus() {
    let checker = Checker::new(0i64);
    for registers in 1..=3usize {
        for seed in 0..1_000u64 {
            let h = random_history(seed * 3 + registers as u64, 10, registers);
            let eager: Vec<Vec<OpId>> = checker
                .enumerate(&h, 10_000)
                .expect("within work cap")
                .iter()
                .map(|s| s.op_ids())
                .collect();
            let streamed: Vec<Vec<OpId>> = checker
                .linearizations(&h)
                .take(10_000)
                .collect::<Result<_, _>>()
                .expect("within work cap");
            assert_eq!(
                streamed, eager,
                "stream diverged from eager enumeration on seed {seed} ({registers} regs): {h}"
            );
        }
    }
}

#[test]
fn take_one_does_strictly_less_work_than_a_full_drain() {
    // The acceptance bar: on the 3-register corpus, pulling one order must cost
    // strictly fewer enumeration nodes than eager (full) enumeration. Individual
    // histories with a unique linearization can tie, so the assertion sums over the
    // corpus — and also checks per-history that lazy never exceeds eager.
    let checker = Checker::new(0i64);
    let mut lazy_total = 0u64;
    let mut eager_total = 0u64;
    for seed in 0..1_000u64 {
        let h = random_history(seed * 3 + 3, 10, 3);
        let mut lazy_iter = checker.linearizations(&h);
        let first = lazy_iter.next();
        let lazy = lazy_iter.nodes_visited();
        drop(lazy_iter);
        let eager = drained_nodes(&checker, &h, usize::MAX);
        assert!(
            lazy <= eager,
            "take(1) out-worked the full drain on seed {seed}: {lazy} vs {eager}"
        );
        // Content check: the first streamed order is the first eager order.
        let eager_first = checker.enumerate(&h, 1).unwrap();
        match first {
            Some(Ok(order)) => assert_eq!(order, eager_first[0].op_ids(), "seed {seed}"),
            Some(Err(err)) => panic!("unexpected work-cap error on seed {seed}: {err}"),
            None => assert!(eager_first.is_empty(), "seed {seed}"),
        }
        lazy_total += lazy;
        eager_total += eager;
    }
    assert!(
        lazy_total < eager_total,
        "take(1) must be strictly lazier over the corpus: {lazy_total} vs {eager_total}"
    );
}

#[test]
fn iterator_can_be_dropped_at_any_point() {
    let checker = Checker::new(0i64);
    for seed in 0..50u64 {
        let h = random_history(seed * 5 + 1, 9, 2);
        // Never pulled.
        let unused: Linearizations<'_, i64> = checker.linearizations(&h);
        drop(unused);
        // Dropped mid-iteration: the already-yielded prefix must match the eager
        // prefix, and dropping must not disturb later sessions on the same checker.
        let eager: Vec<Vec<OpId>> = checker
            .enumerate(&h, 3)
            .unwrap()
            .iter()
            .map(|s| s.op_ids())
            .collect();
        let mut it = checker.linearizations(&h);
        let mut prefix = Vec::new();
        for _ in 0..3 {
            match it.next() {
                Some(Ok(order)) => prefix.push(order),
                Some(Err(err)) => panic!("unexpected work-cap error: {err}"),
                None => break,
            }
        }
        drop(it);
        assert_eq!(prefix, eager, "seed {seed}");
    }
}

#[test]
fn work_cap_yields_one_error_then_fuses() {
    let mut b = HistoryBuilder::new();
    let ids: Vec<_> = (0..8)
        .map(|i| b.invoke_write(ProcessId(i), RegisterId(0), i as i64 + 1))
        .collect();
    for id in ids {
        b.respond_write(id);
    }
    let h = b.build();
    let checker = Checker::builder(0i64).enumeration_work_cap(10).build();
    let mut it = checker.linearizations(&h);
    let mut seen_orders = 0usize;
    let err = loop {
        match it.next() {
            Some(Ok(_)) => seen_orders += 1,
            Some(Err(err)) => break err,
            None => panic!("the cap must trip before the 8! orders are exhausted"),
        }
    };
    assert!(err.nodes_visited > 10);
    assert_eq!(it.nodes_visited(), err.nodes_visited);
    assert!(it.next().is_none(), "after the error the iterator fuses");
    assert!(it.next().is_none());
    assert!(seen_orders <= 10);
}

#[test]
fn family_checks_short_circuit_through_the_stream() {
    // A family that admits: the base's single write extends to the extension's very
    // first linearization, so the streaming check pulls a couple of orders where the
    // eager path materialized up to `max_linearizations` from the extension's 7!-order
    // space. The report's node counter must come in strictly under the eager cost.
    const R: RegisterId = RegisterId(0);
    let mut b = HistoryBuilder::new();
    b.write(ProcessId(0), R, 100i64);
    let base = b.snapshot();
    let ids: Vec<_> = (0..7)
        .map(|i| b.invoke_write(ProcessId(1 + i), R, i as i64 + 1))
        .collect();
    for id in ids {
        b.respond_write(id);
    }
    let ext = b.build();
    let max_linearizations = 2_000usize;

    let family = ExtensionFamily::new(base.clone(), vec![ext.clone()], 0i64);
    let report = family.check_write_strong(max_linearizations);
    assert!(report.admits);

    let checker = Checker::new(0i64);
    let eager_nodes = drained_nodes(&checker, &base, max_linearizations)
        + drained_nodes(&checker, &ext, max_linearizations);
    assert!(
        report.stats.enumeration_nodes < eager_nodes,
        "streaming family check must beat eager materialization: {} vs {eager_nodes}",
        report.stats.enumeration_nodes
    );
}
