//! Differential tests: the engine-backed [`Checker`] against the pre-rewrite
//! reference implementation (`rlt_spec::reference`), on thousands of seeded random
//! histories.
//!
//! Each history mixes pending and completed operations over 1–3 registers with a small
//! value domain (so read values frequently collide with — and frequently contradict —
//! written values, exercising both verdicts). For every history:
//!
//! * the checker's linearizable/not verdict must equal the reference's;
//! * every witness either checker returns must pass the full Definition 2 check
//!   (`SeqHistory::is_linearization_of`);
//! * on the smaller histories, the checker's eager enumeration must produce exactly
//!   the reference enumeration (same orders, same sequence).
//!
//! One `Checker` session is reused across each corpus — that is the intended usage
//! pattern, and it routes every check through the warm-scratch path.

mod common;

use common::random_history;
use rlt_spec::reference::{reference_check_linearizable, reference_enumerate_linearizations};
use rlt_spec::{Checker, OpId};

#[test]
fn checker_verdicts_match_reference_on_1000_histories_per_register_count() {
    let checker = Checker::builder(0i64).state_budget(u64::MAX).build();
    let mut linearizable = 0u32;
    let mut total = 0u32;
    for registers in 1..=3usize {
        for seed in 0..1_000u64 {
            let h = random_history(seed * 3 + registers as u64, 10, registers);
            let verdict = checker.check(&h);
            let reference = reference_check_linearizable(&h, &0, u64::MAX);
            assert_eq!(
                verdict.is_linearizable(),
                reference.is_some(),
                "verdict mismatch on seed {seed} with {registers} register(s): {h}"
            );
            assert!(verdict.is_conclusive());
            total += 1;
            if let Some(witness) = verdict.witness() {
                linearizable += 1;
                assert!(
                    witness.is_linearization_of(&h, &0),
                    "checker witness fails Definition 2 on seed {seed} ({registers} regs): {h}\nwitness: {witness}"
                );
            }
            if let Some(witness) = &reference {
                assert!(
                    witness.is_linearization_of(&h, &0),
                    "reference witness fails Definition 2 on seed {seed} ({registers} regs): {h}"
                );
            }
        }
    }
    // The generator must exercise both verdicts heavily for the diff to mean anything.
    assert!(
        linearizable > 200,
        "only {linearizable} linearizable of {total}"
    );
    assert!(
        total - linearizable > 200,
        "only {} non-linearizable of {total}",
        total - linearizable
    );
}

#[test]
fn checker_enumeration_matches_reference_exactly() {
    let checker = Checker::new(0i64);
    for registers in 1..=2usize {
        for seed in 0..300u64 {
            let h = random_history(seed * 7 + registers as u64, 7, registers);
            let engine: Vec<Vec<OpId>> = checker
                .enumerate(&h, 10_000)
                .expect("within work cap")
                .iter()
                .map(|s| s.op_ids())
                .collect();
            let reference: Vec<Vec<OpId>> = reference_enumerate_linearizations(&h, &0, 10_000)
                .iter()
                .map(|s| s.op_ids())
                .collect();
            assert_eq!(
                engine, reference,
                "enumeration mismatch on seed {seed} with {registers} register(s): {h}"
            );
        }
    }
}

#[test]
fn checker_states_never_exceed_reference_exploration_order_on_multi_register() {
    // Per-register composition: on histories spanning several registers, the engine's
    // explored-state count must stay at the sum of small per-register searches. Checked
    // coarsely: states explored never exceeds 4 * ops + 64 on these small histories
    // (the joint search's worst case grows multiplicatively instead).
    let checker = Checker::builder(0i64).state_budget(u64::MAX).build();
    for seed in 0..500u64 {
        let h = random_history(seed + 77, 10, 3);
        let verdict = checker.check(&h);
        let bound = 4 * h.len() as u64 + 64;
        assert!(
            verdict.stats().states_explored <= bound,
            "seed {seed}: {} states on a {}-op history (bound {bound})",
            verdict.stats().states_explored,
            h.len()
        );
    }
}
