//! Cross-crate integration tests for ABD in message passing and Theorem 14.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_core::mp::{AbdCluster, MessageCluster};
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::swmr::{
    canonical_swmr_strategy, effective_swmr_writes, is_swmr_history, swmr_star,
};
use rlt_core::spec::{Checker, ProcessId};

fn adversarial_run(n: usize, writer: ProcessId, seed: u64, crash: Option<ProcessId>) -> AbdCluster {
    let mut cluster = AbdCluster::new(n, writer);
    let mut rng = StdRng::seed_from_u64(seed);
    if let Some(p) = crash {
        cluster.crash(p);
    }
    let mut next_value = 1i64;
    for phase in 0..6 {
        if cluster.is_idle(writer) && phase % 2 == 0 {
            cluster.start_write(next_value);
            next_value += 1;
        }
        for reader in 0..n {
            let reader = ProcessId(reader);
            if reader != writer
                && !cluster.is_crashed(reader)
                && cluster.is_idle(reader)
                && rng.gen_bool(0.4)
            {
                cluster.start_read(reader);
            }
        }
        for _ in 0..rng.gen_range(3..18) {
            cluster.deliver_random(&mut rng);
        }
    }
    cluster.run_to_quiescence(&mut rng, 200_000);
    cluster
}

#[test]
fn abd_histories_are_swmr_and_linearizable() {
    for seed in 0..10u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, None);
        let h = cluster.history();
        assert!(is_swmr_history(&h), "seed {seed}");
        assert!(
            Checker::new(0i64).check(&h).is_linearizable(),
            "seed {seed}"
        );
    }
}

#[test]
fn theorem14_abd_is_write_strongly_linearizable() {
    for seed in 0..10u64 {
        let cluster = adversarial_run(5, ProcessId(2), seed, None);
        let h = cluster.history();
        let strategy = canonical_swmr_strategy(0i64);
        check_write_strong_prefix_property(&strategy, &h, &0)
            .unwrap_or_else(|v| panic!("Theorem 14 violated on seed {seed}: {v}"));
    }
}

#[test]
fn theorem14_holds_under_minority_crashes() {
    for seed in 0..6u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, Some(ProcessId(4)));
        let h = cluster.history();
        assert!(
            Checker::new(0i64).check(&h).is_linearizable(),
            "seed {seed}"
        );
        let strategy = canonical_swmr_strategy(0i64);
        assert!(
            check_write_strong_prefix_property(&strategy, &h, &0).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn f_star_write_sequence_matches_effective_writes() {
    // Appendix E, Claims 67.1/67.2: the writes of f*(H) are exactly the writes that are
    // complete or read by some read, in start-time order.
    for seed in 0..6u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, None);
        let h = cluster.history();
        let f_output = Checker::new(0i64)
            .check(&h)
            .into_witness()
            .expect("linearizable");
        let starred = swmr_star(f_output, &h);
        let expected = effective_swmr_writes(&h);
        let mut got = starred.write_ids();
        // f* may omit pending writes that were never read; the effective-writes list is
        // exactly the set that must appear. Sort-insensitive comparison of sets first:
        got.sort();
        let mut exp_sorted = expected.clone();
        exp_sorted.sort();
        assert_eq!(got, exp_sorted, "seed {seed}");
        // And the order (by invocation) must agree as well.
        assert_eq!(starred.write_ids(), expected, "seed {seed}");
    }
}

#[test]
fn larger_abd_clusters_stay_linearizable_under_batch_checking() {
    // Bigger clusters (n = 9, up to two crashed replicas) over many more adversarial
    // schedules than the original n = 5 suite, with all the histories checked in one
    // batch call — the workload shape the batch API exists for.
    let mut histories = Vec::new();
    for &(n, crash) in &[(7usize, None), (9, None), (9, Some(ProcessId(8)))] {
        for seed in 0..12u64 {
            let cluster = adversarial_run(n, ProcessId(0), seed * 31 + n as u64, crash);
            let h = cluster.history();
            assert!(is_swmr_history(&h), "n={n} seed={seed}");
            histories.push(h);
        }
    }
    let reports = Checker::builder(0i64)
        .state_budget(u64::MAX)
        .build()
        .check_many(&histories);
    assert_eq!(reports.len(), histories.len());
    for (i, report) in reports.iter().enumerate() {
        assert!(report.is_conclusive(), "history {i}");
        let witness = report
            .witness()
            .unwrap_or_else(|| panic!("ABD produced a non-linearizable history at index {i}"));
        assert!(
            witness.is_linearization_of(&histories[i], &0),
            "witness fails Definition 2 on history {i}"
        );
    }
}

#[test]
fn theorem14_scales_to_nine_replica_clusters() {
    for seed in 0..6u64 {
        let cluster = adversarial_run(9, ProcessId(4), seed, None);
        let h = cluster.history();
        let strategy = canonical_swmr_strategy(0i64);
        check_write_strong_prefix_property(&strategy, &h, &0)
            .unwrap_or_else(|v| panic!("Theorem 14 violated on 9-replica seed {seed}: {v}"));
    }
}

#[test]
fn crashed_majority_leaves_pending_operations_without_breaking_safety() {
    let mut cluster = AbdCluster::new(5, ProcessId(0));
    let mut rng = StdRng::seed_from_u64(9);
    cluster.start_write(1);
    cluster.run_to_quiescence(&mut rng, 10_000);
    cluster.crash(ProcessId(2));
    cluster.crash(ProcessId(3));
    cluster.crash(ProcessId(4));
    cluster.start_read(ProcessId(1));
    cluster.run_to_quiescence(&mut rng, 10_000);
    let h = cluster.history();
    assert_eq!(h.pending().count(), 1); // the read can never finish
    assert!(Checker::new(0i64).check(&h).is_linearizable());
}

// ---------------------------------------------------------------------------
// Adversarial message schedules (experiment E13)
// ---------------------------------------------------------------------------

use rlt_core::mp::adversary::hunt_new_old_inversion;
use rlt_core::mp::minimize::minimize_schedule;
use rlt_core::mp::{
    DeliveryAdversary, FaultyAbdCluster, NewestFirstAdversary, OldestFirstAdversary,
    ReplyWithholdingAdversary, StarveDestinationAdversary, UniformAdversary,
};

#[test]
fn targeted_adversary_beats_uniform_delivery_by_an_order_of_magnitude() {
    // The quantitative claim behind the E13 rows of BENCH_abd.json, on a smaller
    // seed set: on the faulty cluster the reply-withholding adversary reaches a
    // checker-rejected history in >= 10x fewer deliveries (median) than uniform
    // random delivery. Everything here is deterministic per seed.
    let checker = Checker::new(0i64);
    let cap = 1_200u64;
    let seeds = 12u64;
    let median_deliveries = |mk: &dyn Fn(u64) -> Box<dyn DeliveryAdversary>| {
        let mut outcomes: Vec<u64> = (0..seeds)
            .map(|seed| {
                let mut adversary = mk(seed);
                hunt_new_old_inversion(
                    FaultyAbdCluster::new(5, ProcessId(0)),
                    &mut *adversary,
                    seed,
                    cap,
                    &checker,
                )
                .violation_at
                .unwrap_or(cap)
            })
            .collect();
        outcomes.sort_unstable();
        outcomes[outcomes.len() / 2]
    };
    let uniform = median_deliveries(&|seed| Box::new(UniformAdversary::new(seed ^ 0xabcd)));
    let targeted = median_deliveries(&|_| Box::new(ReplyWithholdingAdversary::new()));
    assert!(
        targeted * 10 <= uniform,
        "targeted median {targeted} must be >= 10x under uniform median {uniform}"
    );
    assert!(targeted > 0, "the hunt must actually deliver messages");
}

#[test]
fn minimizer_shrinks_a_failing_schedule_below_25_deliveries() {
    let checker = Checker::new(0i64);
    let fresh = || FaultyAbdCluster::new(5, ProcessId(0));
    let mut adversary = ReplyWithholdingAdversary::new();
    let report = hunt_new_old_inversion(fresh(), &mut adversary, 0, 1_000, &checker);
    assert!(report.violation_at.is_some(), "hunt must find a violation");
    let not_linearizable =
        |h: &rlt_core::spec::History<i64>| matches!(checker.check(h).outcome(), Ok(false));
    let minimal = minimize_schedule(fresh, &report.schedule, not_linearizable, 0).schedule;
    assert!(
        minimal.delivery_count() <= 25,
        "shrunk schedule still has {} deliveries",
        minimal.delivery_count()
    );
    // The shrunk schedule replays bit-identically to the same rejected verdict.
    let (mut a, mut b) = (fresh(), fresh());
    minimal.replay_on(&mut a);
    minimal.replay_on(&mut b);
    assert_eq!(a.history(), b.history());
    assert!(not_linearizable(&a.history()));
}

#[test]
fn every_adversary_schedule_keeps_real_abd_linearizable() {
    // Theorem 14's flip side on concrete executions: no delivery adversary — not even
    // the one that breaks the faulty cluster in seventeen deliveries — can force a
    // non-linearizable history out of real ABD.
    let checker = Checker::new(0i64);
    let adversaries: Vec<Box<dyn DeliveryAdversary>> = vec![
        Box::new(UniformAdversary::new(5)),
        Box::new(OldestFirstAdversary::new()),
        Box::new(NewestFirstAdversary::new()),
        Box::new(StarveDestinationAdversary::new(ProcessId(3))),
        Box::new(ReplyWithholdingAdversary::new()),
    ];
    for mut adversary in adversaries {
        let report = hunt_new_old_inversion(
            AbdCluster::new(5, ProcessId(0)),
            &mut *adversary,
            2,
            400,
            &checker,
        );
        assert_eq!(report.violation_at, None, "adversary {adversary:?}");
        // And the full recorded run re-checks as linearizable on replay.
        let mut replay = AbdCluster::new(5, ProcessId(0));
        report.schedule.replay_on(&mut replay);
        assert!(checker.check(&replay.history()).is_linearizable());
    }
}

#[test]
fn a_faulty_counterexample_schedule_is_harmless_on_the_correct_cluster() {
    // Replay the exact message schedule that breaks the faulty cluster on real ABD:
    // the first read blocks in its write-back phase (those messages are not in the
    // recorded schedule), so the stale second read can never complete an inversion.
    let checker = Checker::new(0i64);
    let mut adversary = ReplyWithholdingAdversary::new();
    let report = hunt_new_old_inversion(
        FaultyAbdCluster::new(5, ProcessId(0)),
        &mut adversary,
        1,
        1_000,
        &checker,
    );
    assert!(report.violation_at.is_some());
    let mut faulty = FaultyAbdCluster::new(5, ProcessId(0));
    report.schedule.replay_on(&mut faulty);
    assert!(!checker.check(&faulty.history()).is_linearizable());
    let mut correct = AbdCluster::new(5, ProcessId(0));
    report.schedule.replay_on(&mut correct);
    assert!(checker.check(&correct.history()).is_linearizable());
}

#[test]
fn crashing_clients_mid_operation_never_completes_their_ops() {
    // Crash during each phase of a read and during a write, then drive the cluster to
    // quiescence under every deterministic adversary: the crashed op must stay
    // pending and the history linearizable.
    let checker = Checker::new(0i64);
    let mut cluster = AbdCluster::new(5, ProcessId(0));
    let mut rng = StdRng::seed_from_u64(3);
    cluster.start_write(1);
    cluster.run_to_quiescence(&mut rng, 10_000);
    cluster.start_read(ProcessId(1));
    cluster.run_to_quiescence(&mut rng, 3); // partway through the query phase
    cluster.crash(ProcessId(1));
    cluster.start_write(2);
    cluster.run_to_quiescence(&mut rng, 10_000);
    let h = cluster.history();
    assert_eq!(h.pending().count(), 1, "the crashed read stays pending");
    assert!(checker.check(&h).is_linearizable());
    assert_eq!(cluster.inflight_count(), 0, "no stale traffic circulates");
}
