//! Cross-crate integration tests for ABD in message passing and Theorem 14.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_core::mp::AbdCluster;
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::swmr::{
    canonical_swmr_strategy, effective_swmr_writes, is_swmr_history, swmr_star,
};
use rlt_core::spec::{Checker, ProcessId};

fn adversarial_run(n: usize, writer: ProcessId, seed: u64, crash: Option<ProcessId>) -> AbdCluster {
    let mut cluster = AbdCluster::new(n, writer);
    let mut rng = StdRng::seed_from_u64(seed);
    if let Some(p) = crash {
        cluster.crash(p);
    }
    let mut next_value = 1i64;
    for phase in 0..6 {
        if cluster.is_idle(writer) && phase % 2 == 0 {
            cluster.start_write(next_value);
            next_value += 1;
        }
        for reader in 0..n {
            let reader = ProcessId(reader);
            if reader != writer
                && !cluster.is_crashed(reader)
                && cluster.is_idle(reader)
                && rng.gen_bool(0.4)
            {
                cluster.start_read(reader);
            }
        }
        for _ in 0..rng.gen_range(3..18) {
            cluster.deliver_random(&mut rng);
        }
    }
    cluster.run_to_quiescence(&mut rng, 200_000);
    cluster
}

#[test]
fn abd_histories_are_swmr_and_linearizable() {
    for seed in 0..10u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, None);
        let h = cluster.history();
        assert!(is_swmr_history(&h), "seed {seed}");
        assert!(
            Checker::new(0i64).check(&h).is_linearizable(),
            "seed {seed}"
        );
    }
}

#[test]
fn theorem14_abd_is_write_strongly_linearizable() {
    for seed in 0..10u64 {
        let cluster = adversarial_run(5, ProcessId(2), seed, None);
        let h = cluster.history();
        let strategy = canonical_swmr_strategy(0i64);
        check_write_strong_prefix_property(&strategy, &h, &0)
            .unwrap_or_else(|v| panic!("Theorem 14 violated on seed {seed}: {v}"));
    }
}

#[test]
fn theorem14_holds_under_minority_crashes() {
    for seed in 0..6u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, Some(ProcessId(4)));
        let h = cluster.history();
        assert!(
            Checker::new(0i64).check(&h).is_linearizable(),
            "seed {seed}"
        );
        let strategy = canonical_swmr_strategy(0i64);
        assert!(
            check_write_strong_prefix_property(&strategy, &h, &0).is_ok(),
            "seed {seed}"
        );
    }
}

#[test]
fn f_star_write_sequence_matches_effective_writes() {
    // Appendix E, Claims 67.1/67.2: the writes of f*(H) are exactly the writes that are
    // complete or read by some read, in start-time order.
    for seed in 0..6u64 {
        let cluster = adversarial_run(5, ProcessId(0), seed, None);
        let h = cluster.history();
        let f_output = Checker::new(0i64)
            .check(&h)
            .into_witness()
            .expect("linearizable");
        let starred = swmr_star(f_output, &h);
        let expected = effective_swmr_writes(&h);
        let mut got = starred.write_ids();
        // f* may omit pending writes that were never read; the effective-writes list is
        // exactly the set that must appear. Sort-insensitive comparison of sets first:
        got.sort();
        let mut exp_sorted = expected.clone();
        exp_sorted.sort();
        assert_eq!(got, exp_sorted, "seed {seed}");
        // And the order (by invocation) must agree as well.
        assert_eq!(starred.write_ids(), expected, "seed {seed}");
    }
}

#[test]
fn larger_abd_clusters_stay_linearizable_under_batch_checking() {
    // Bigger clusters (n = 9, up to two crashed replicas) over many more adversarial
    // schedules than the original n = 5 suite, with all the histories checked in one
    // batch call — the workload shape the batch API exists for.
    let mut histories = Vec::new();
    for &(n, crash) in &[(7usize, None), (9, None), (9, Some(ProcessId(8)))] {
        for seed in 0..12u64 {
            let cluster = adversarial_run(n, ProcessId(0), seed * 31 + n as u64, crash);
            let h = cluster.history();
            assert!(is_swmr_history(&h), "n={n} seed={seed}");
            histories.push(h);
        }
    }
    let reports = Checker::builder(0i64)
        .state_budget(u64::MAX)
        .build()
        .check_many(&histories);
    assert_eq!(reports.len(), histories.len());
    for (i, report) in reports.iter().enumerate() {
        assert!(report.is_conclusive(), "history {i}");
        let witness = report
            .witness()
            .unwrap_or_else(|| panic!("ABD produced a non-linearizable history at index {i}"));
        assert!(
            witness.is_linearization_of(&histories[i], &0),
            "witness fails Definition 2 on history {i}"
        );
    }
}

#[test]
fn theorem14_scales_to_nine_replica_clusters() {
    for seed in 0..6u64 {
        let cluster = adversarial_run(9, ProcessId(4), seed, None);
        let h = cluster.history();
        let strategy = canonical_swmr_strategy(0i64);
        check_write_strong_prefix_property(&strategy, &h, &0)
            .unwrap_or_else(|v| panic!("Theorem 14 violated on 9-replica seed {seed}: {v}"));
    }
}

#[test]
fn crashed_majority_leaves_pending_operations_without_breaking_safety() {
    let mut cluster = AbdCluster::new(5, ProcessId(0));
    let mut rng = StdRng::seed_from_u64(9);
    cluster.start_write(1);
    cluster.run_to_quiescence(&mut rng, 10_000);
    cluster.crash(ProcessId(2));
    cluster.crash(ProcessId(3));
    cluster.crash(ProcessId(4));
    cluster.start_read(ProcessId(1));
    cluster.run_to_quiescence(&mut rng, 10_000);
    let h = cluster.history();
    assert_eq!(h.pending().count(), 1); // the read can never finish
    assert!(Checker::new(0i64).check(&h).is_linearizable());
}
