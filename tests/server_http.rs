//! Integration tests for the HTTP checking service: failure paths (line-numbered
//! 400s, load-shedding 429s, 404s), graceful shutdown draining, and the
//! differential pin — every verdict served over HTTP is byte-identical to the
//! direct library call under every thread policy.

use httpd::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_core::server::{serve, AppConfig, ServerHandle};
use rlt_core::spec::wire::{format_history, parse_history, verdict_to_json};
use rlt_core::spec::{History, HistoryBuilder, OpId, ProcessId, RegisterId, ThreadPolicy, Value};

/// A random well-formed `History<Value>` with a pending tail (same shape as the
/// wire-codec property corpus).
fn random_history(seed: u64, max_ops: usize) -> History<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b: HistoryBuilder<Value> = HistoryBuilder::new();
    let mut open: Vec<(OpId, bool)> = Vec::new();
    let value = |rng: &mut StdRng| match rng.gen_range(0..3) {
        0 => Value::Init,
        1 => Value::Int(rng.gen_range(1..4)),
        _ => Value::Pair(rng.gen_range(0..3), rng.gen_range(0..3)),
    };
    for _ in 0..rng.gen_range(1..=max_ops) {
        let p = ProcessId(rng.gen_range(0..3));
        let r = RegisterId(rng.gen_range(0..2));
        if rng.gen_bool(0.5) {
            let v = value(&mut rng);
            open.push((b.invoke_write(p, r, v), false));
        } else {
            open.push((b.invoke_read(p, r), true));
        }
        while !open.is_empty() && rng.gen_bool(0.5) {
            let (id, is_read) = open.swap_remove(rng.gen_range(0..open.len()));
            if is_read {
                let v = value(&mut rng);
                b.respond_read(id, v);
            } else {
                b.respond_write(id);
            }
        }
    }
    b.build()
}

fn server(config: AppConfig) -> (ServerHandle, Client) {
    let handle = serve(config).expect("bind");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

#[test]
fn malformed_bodies_get_line_numbered_400() {
    let (handle, mut client) = server(AppConfig::default());
    let cases: &[(&str, usize)] = &[
        ("not a history line\n", 1),
        ("op0 p0 R0 write 1 @ t1..t2\nop0 p0 R0 read 1 @ t3..t4\n", 2),
        ("op0 p0 R0 write 1 @ t2..t1\n", 1),
        ("op0 p0 R0 write what @ t1..t2\n", 1),
        ("op0 p0 R0 poke 1 @ t1..t2\n", 1),
        ("# comment only\nop0 p0 R0 write 1 @ t1..t1\n", 2),
    ];
    for (body, line) in cases {
        let resp = client.post("/check", body).expect("POST /check");
        assert_eq!(resp.status, 400, "{body:?} -> {}", resp.body);
        assert!(
            resp.body.contains(&format!("history line {line}:")),
            "{body:?} -> {}",
            resp.body
        );
    }
    // The connection survives every 400 — a good request still round-trips.
    let resp = client
        .post("/check", "op0 p0 R0 write 1 @ t1..t2\n")
        .expect("POST /check");
    assert_eq!(resp.status, 200);
    let metrics = client.get("/metrics?deterministic=1").expect("metrics");
    assert!(metrics
        .body
        .contains(&format!("\"parse_errors\":{}", cases.len())));
    handle.shutdown();
}

#[test]
fn oversized_histories_shed_with_429() {
    let config = AppConfig {
        max_ops: 2,
        ..AppConfig::default()
    };
    let (handle, mut client) = server(config);
    let big =
        "op0 p0 R0 write 1 @ t1..t2\nop1 p0 R0 write 2 @ t3..t4\nop2 p0 R0 write 3 @ t5..t6\n";
    let resp = client.post("/check", big).expect("POST /check");
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(resp.body.contains("2"), "names the cap: {}", resp.body);
    // Within the cap the same server still answers.
    let resp = client
        .post("/check", "op0 p0 R0 write 1 @ t1..t2\n")
        .expect("POST /check");
    assert_eq!(resp.status, 200);
    let metrics = client.get("/metrics?deterministic=1").expect("metrics");
    assert!(metrics.body.contains("\"rejected_oversize\":1"));
    handle.shutdown();

    // A body over the transport cap never reaches the service at all: 413.
    let config = AppConfig {
        max_body: 64,
        ..AppConfig::default()
    };
    let (handle, mut client) = server(config);
    let resp = client.post("/check", big).expect("POST /check");
    assert_eq!(resp.status, 413);
    handle.shutdown();
}

#[test]
fn backpressure_sheds_with_429_when_aggregate_budget_exhausted() {
    let config = AppConfig {
        aggregate_state_budget: 1,
        ..AppConfig::default()
    };
    let (handle, mut client) = server(config);
    let resp = client
        .post("/check", "op0 p0 R0 write 1 @ t1..t2\n")
        .expect("POST /check");
    assert_eq!(resp.status, 429, "{}", resp.body);
    let metrics = client.get("/metrics?deterministic=1").expect("metrics");
    assert!(metrics.body.contains("\"rejected_backpressure\":1"));
    assert_eq!(
        handle.service().in_flight_cost(),
        0,
        "guard released on shed"
    );
    handle.shutdown();
}

#[test]
fn unknown_sessions_and_routes_get_404_wrong_methods_405() {
    let (handle, mut client) = server(AppConfig::default());
    let resp = client.get("/sessions/999/verdict").expect("GET verdict");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = client
        .post("/sessions/999/events", "op0 p0 R0 write 1 @ t1..t2\n")
        .expect("POST events");
    assert_eq!(resp.status, 404);
    let resp = client.delete("/sessions/999").expect("DELETE session");
    assert_eq!(resp.status, 404);
    let resp = client.get("/no/such/route").expect("GET");
    assert_eq!(resp.status, 404);
    let resp = client.get("/check").expect("GET /check");
    assert_eq!(resp.status, 405);
    let resp = client.post("/metrics", "").expect("POST /metrics");
    assert_eq!(resp.status, 405);
    // A deleted session is gone — its id is not reused.
    let created = client.post("/sessions", "").expect("POST /sessions");
    assert_eq!(created.status, 201);
    let id: u64 = created
        .body
        .trim_start_matches("{\"session\":")
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("session id");
    assert_eq!(
        client
            .delete(&format!("/sessions/{id}"))
            .expect("DELETE")
            .status,
        204
    );
    assert_eq!(
        client
            .get(&format!("/sessions/{id}/verdict"))
            .expect("GET")
            .status,
        404
    );
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_checks() {
    let handle = serve(AppConfig::default()).expect("bind");
    let addr = handle.addr();
    let body = format_history(&random_history(9, 24));
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.post("/check", &body).expect("in-flight POST /check")
    });
    // Shut down while the request may still be in flight: the worker's response
    // must be a completed 200, never a dropped socket.
    std::thread::sleep(std::time::Duration::from_millis(2));
    handle.shutdown();
    let resp = worker.join().expect("worker thread");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // The listener is gone afterwards.
    assert!(Client::connect(addr)
        .and_then(|mut c| c.get("/health"))
        .is_err());
}

/// The differential pin: the verdict served over HTTP is byte-identical to the
/// direct `Checker::check` call with the server's own knobs, at every thread
/// policy — and identical across policies.
#[test]
fn served_verdicts_match_library_at_every_thread_policy() {
    let bodies: Vec<String> = (0..12)
        .map(|seed| format_history(&random_history(seed, 20)))
        .collect();
    let mut per_policy: Vec<Vec<String>> = Vec::new();
    for threads in [
        ThreadPolicy::Sequential,
        ThreadPolicy::Auto,
        ThreadPolicy::Fixed(2),
    ] {
        let config = AppConfig {
            threads,
            ..AppConfig::default()
        };
        let (handle, mut client) = server(config);
        let direct = handle.service().build_checker();
        let mut served = Vec::new();
        for body in &bodies {
            let resp = client.post("/check", body).expect("POST /check");
            assert_eq!(resp.status, 200, "{}", resp.body);
            let expected = verdict_to_json(&direct.check(&parse_history(body).expect("parses")));
            assert_eq!(resp.body, expected, "policy {threads:?}");
            served.push(resp.body);
        }
        per_policy.push(served);
        handle.shutdown();
    }
    assert_eq!(per_policy[0], per_policy[1], "Sequential vs Auto");
    assert_eq!(per_policy[0], per_policy[2], "Sequential vs Fixed(2)");
}

/// The monitoring-session pin: after every event chunk, the served verdict is
/// byte-identical to a direct `IncrementalChecker` fed the same prefix, and the
/// served history echoes the session's operation stream.
#[test]
fn session_verdicts_match_direct_incremental_checker() {
    let (handle, mut client) = server(AppConfig::default());
    let history = random_history(42, 24);
    let ops = history.operations();
    let created = client.post("/sessions", "").expect("POST /sessions");
    assert_eq!(created.status, 201);
    let id: u64 = created
        .body
        .trim_start_matches("{\"session\":")
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("session id");

    let mut direct = handle.service().build_checker().incremental();
    for chunk in ops.chunks(5) {
        let body = format_history(&History::from_operations(chunk.to_vec()));
        let resp = client
            .post(&format!("/sessions/{id}/events"), &body)
            .expect("POST events");
        assert_eq!(resp.status, 200, "{}", resp.body);
        for op in chunk {
            direct.append(op.clone());
        }
        let served = client
            .get(&format!("/sessions/{id}/verdict"))
            .expect("GET verdict");
        assert_eq!(served.status, 200);
        let expected = format!(
            "{{\"verdict\":{},",
            verdict_to_json(direct.verdict().as_verdict())
        );
        assert!(
            served.body.starts_with(&expected),
            "served {} vs library {}",
            served.body,
            expected
        );
    }
    // The echoed history parses back to exactly the session's operations.
    let echoed = client
        .get(&format!("/sessions/{id}/history"))
        .expect("GET history");
    assert_eq!(echoed.status, 200);
    assert_eq!(
        parse_history(&echoed.body)
            .expect("echo parses")
            .operations(),
        ops
    );
    handle.shutdown();
}

#[test]
fn analyze_reports_line_numbered_diagnostics_as_stable_json() {
    let (handle, mut client) = server(AppConfig::default());
    // A clean schedule under the permissive model.
    let resp = client
        .post("/analyze", "write 7\ncrash 1\nrecover 1\n")
        .expect("POST /analyze");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.body,
        "{\"clean\":true,\"steps\":3,\"dead_steps\":0,\"diagnostics\":[]}"
    );
    // Dead steps come back with real source line numbers (comments counted).
    let resp = client
        .post("/analyze", "# preamble\n\nrecover 2\nheal 9\n")
        .expect("POST /analyze");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body,
        "{\"clean\":false,\"steps\":2,\"dead_steps\":2,\"diagnostics\":[\
         {\"step\":0,\"line\":3,\"severity\":\"dead\",\"code\":\"dead-recover\",\
         \"message\":\"process 2 is not crashed here\"},\
         {\"step\":1,\"line\":4,\"severity\":\"dead\",\"code\":\"dead-heal\",\
         \"message\":\"no partition with id 9 is installed\"}]}"
    );
    // Shaped models unlock protocol-role diagnostics.
    let resp = client
        .post("/analyze/faulty-abd", "read 2\ndeliver 2->1 wb-req#1\n")
        .expect("POST /analyze/faulty-abd");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains("\"code\":\"no-write-back\""),
        "{}",
        resp.body
    );
    // Byte-stability: the same body twice produces the same bytes.
    let again = client
        .post("/analyze/faulty-abd", "read 2\ndeliver 2->1 wb-req#1\n")
        .expect("repeat");
    assert_eq!(resp.body, again.body);
    handle.shutdown();
}

#[test]
fn analyze_maps_errors_to_400_404_405() {
    let (handle, mut client) = server(AppConfig::default());
    let resp = client
        .post("/analyze", "write 1\nbogus step\n")
        .expect("POST /analyze");
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("schedule line 2:"), "{}", resp.body);
    let resp = client
        .post("/analyze/no-such-cluster", "write 1\n")
        .expect("POST unknown model");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = client.get("/analyze").expect("GET /analyze");
    assert_eq!(resp.status, 405, "{}", resp.body);
    handle.shutdown();
}
