//! Determinism pins for the coverage-guided schedule fuzzer: the mutant stream,
//! the final corpus, and the trophy set are pure functions of the fuzzer seed,
//! regardless of how many workers the fork-join pool runs.
//!
//! The fuzzer fans mutant replays across `rayon::par_map`, which returns results
//! in *task* order at any pool width; the generation barrier then merges them
//! sequentially in that order. These tests hold that contract down: a run inside
//! a 1-thread pool and the same run inside a 4-thread pool must produce equal
//! [`FuzzReport`]s, field for field — the `RLT_THREADS=1` vs `=4` guarantee.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlt_core::mp::fuzz::{
    fuzz_faulty_rediscovery, mutate_schedule, record_clean_corpus, FuzzConfig,
};
use rlt_core::mp::FaultyAbdCluster;
use rlt_core::spec::ProcessId;

fn in_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(op)
}

#[test]
fn mutant_stream_is_byte_identical_across_pool_widths() {
    // Mutation is a pure function of (parent, donor, task seed); no pool is
    // even consulted. Pin that by diffing the rendered mutant text.
    let seeds = record_clean_corpus(|| FaultyAbdCluster::new(5, ProcessId(0)), 2, 50, 23, false);
    let stream = |threads: usize| {
        in_pool(threads, || {
            (0..32u64)
                .map(|task| {
                    let mut rng = StdRng::seed_from_u64(task);
                    mutate_schedule(&seeds[0], &seeds[1], 300, &mut rng).to_string()
                })
                .collect::<Vec<String>>()
        })
    };
    assert_eq!(stream(1), stream(4));
}

#[test]
fn fuzz_reports_are_bit_identical_at_one_and_four_threads() {
    // The full pipeline: seed replay, breeding, coverage merge, trophy ddmin
    // and re-verification. Any scheduling leak shows up as a corpus or counter
    // diff; FuzzReport's PartialEq covers every field including the schedules.
    let config = FuzzConfig {
        generations: 6,
        stop_at_first_trophy: false,
        delivery_budget: 30_000,
        ..FuzzConfig::default()
    };
    let narrow = in_pool(1, || fuzz_faulty_rediscovery(7, &config));
    let wide = in_pool(4, || fuzz_faulty_rediscovery(7, &config));
    assert_eq!(narrow, wide);
    // And the run is self-deterministic: repeating it changes nothing.
    let again = in_pool(4, || fuzz_faulty_rediscovery(7, &config));
    assert_eq!(wide, again);
}

#[test]
fn static_triage_counters_are_identical_across_pool_widths() {
    // Triage keys are computed in parallel but consumed strictly in task
    // order, so the rejected/canonicalized tallies — and everything downstream
    // of the mutants they filter — are pool-width invariant.
    let config = FuzzConfig {
        generations: 6,
        stop_at_first_trophy: false,
        delivery_budget: 30_000,
        ..FuzzConfig::default()
    };
    let narrow = in_pool(1, || fuzz_faulty_rediscovery(11, &config));
    let wide = in_pool(4, || fuzz_faulty_rediscovery(11, &config));
    assert_eq!(narrow.statically_rejected, wide.statically_rejected);
    assert_eq!(
        narrow.statically_canonicalized,
        wide.statically_canonicalized
    );
    assert!(
        narrow.statically_rejected > 0,
        "triage must actually reject some mutants in a 6-generation run"
    );
    assert_eq!(narrow, wide);
}

#[test]
fn trophy_sets_agree_across_pool_widths_when_hunting() {
    // Rediscovery mode (stop at first trophy): the trophy itself — raw and
    // minimized schedule text — must not depend on the pool width.
    let config = FuzzConfig::default();
    let narrow = in_pool(1, || fuzz_faulty_rediscovery(3, &config));
    let wide = in_pool(4, || fuzz_faulty_rediscovery(3, &config));
    assert_eq!(narrow.trophies.len(), wide.trophies.len());
    assert!(!narrow.trophies.is_empty(), "seed 3 must rediscover");
    for (a, b) in narrow.trophies.iter().zip(wide.trophies.iter()) {
        assert_eq!(a.schedule.to_string(), b.schedule.to_string());
        assert_eq!(a.minimized.to_string(), b.minimized.to_string());
        assert!(a.verified && b.verified);
    }
}
