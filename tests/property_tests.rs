//! Property-based tests (proptest) on the core data structures and invariants.

use proptest::prelude::*;
use rlt_core::registers::algorithm2::VectorSim;
use rlt_core::registers::algorithm3::vector_linearization;
use rlt_core::registers::algorithm4::LamportSim;
use rlt_core::registers::timestamp::{TsEntry, VectorTs};
use rlt_core::sim::{RegisterMode, SharedMem};
use rlt_core::spec::prelude::*;
use rlt_core::spec::Value;

// ---------------------------------------------------------------------------
// Vector timestamps
// ---------------------------------------------------------------------------

fn arb_vector_ts(n: usize) -> impl Strategy<Value = VectorTs> {
    prop::collection::vec(
        prop_oneof![3 => (0u64..6).prop_map(Some), 1 => Just(None)],
        n,
    )
    .prop_map(move |entries| {
        let mut ts = VectorTs::infinity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            if let Some(v) = e {
                ts.set(i, TsEntry::Finite(*v));
            }
        }
        ts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vector_ts_order_is_total_and_antisymmetric(a in arb_vector_ts(4), b in arb_vector_ts(4)) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab.reverse(), ba);
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn vector_ts_order_is_transitive(a in arb_vector_ts(3), b in arb_vector_ts(3), c in arb_vector_ts(3)) {
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn filling_in_a_component_never_increases_the_timestamp(
        ts in arb_vector_ts(4),
        idx in 0usize..4,
        value in 0u64..6,
    ) {
        // Observation 25: assigning a finite value to an ∞ component can only decrease
        // the vector in lexicographic order.
        if ts.get(idx).is_infinity() {
            let mut filled = ts.clone();
            filled.set(idx, TsEntry::Finite(value));
            prop_assert!(filled <= ts);
        }
    }

    #[test]
    fn infinity_vector_is_the_maximum(ts in arb_vector_ts(5)) {
        prop_assert!(ts <= VectorTs::infinity(5));
        prop_assert!(VectorTs::zero(5) <= ts || !ts.is_complete() || ts == VectorTs::zero(5) || ts > VectorTs::zero(5));
    }
}

// ---------------------------------------------------------------------------
// Histories and prefixes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HistOp {
    Write { p: usize, reg: usize, v: i64 },
    Read { p: usize, reg: usize },
    Step,
}

fn arb_script(len: usize) -> impl Strategy<Value = Vec<HistOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, 0usize..2, 1i64..50).prop_map(|(p, reg, v)| HistOp::Write { p, reg, v }),
            (0usize..4, 0usize..2).prop_map(|(p, reg)| HistOp::Read { p, reg }),
            Just(HistOp::Step),
        ],
        1..len,
    )
}

/// Executes a script against atomic interval registers, interleaving begin/finish so
/// that operations overlap, and returns the recorded history.
fn execute_script(script: &[HistOp]) -> rlt_core::spec::History<i64> {
    let mut mem: SharedMem<i64> = SharedMem::new(RegisterMode::Atomic, 0);
    let mut pending: Vec<rlt_core::sim::PendingOp> = Vec::new();
    let mut pending_is_read: Vec<bool> = Vec::new();
    for op in script {
        match op {
            HistOp::Write { p, reg, v } => {
                pending.push(mem.begin_write(ProcessId(*p), RegisterId(*reg), *v));
                pending_is_read.push(false);
            }
            HistOp::Read { p, reg } => {
                pending.push(mem.begin_read(ProcessId(*p), RegisterId(*reg)));
                pending_is_read.push(true);
            }
            HistOp::Step => {
                if !pending.is_empty() {
                    let h = pending.remove(0);
                    if pending_is_read.remove(0) {
                        let _ = mem.finish_read(h);
                    } else {
                        mem.finish_write(h);
                    }
                }
            }
        }
    }
    // Finish everything else.
    while !pending.is_empty() {
        let h = pending.remove(0);
        if pending_is_read.remove(0) {
            let _ = mem.finish_read(h);
        } else {
            mem.finish_write(h);
        }
    }
    mem.history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn atomic_interval_register_histories_are_always_linearizable(script in arb_script(18)) {
        // NOTE: overlapping operations by the *same* process are not meaningful; the
        // script may create them, so skip those cases.
        let per_process_overlap = {
            let mut in_flight = [0usize; 4];
            let mut overlap = false;
            for op in &script {
                match op {
                    HistOp::Write { p, .. } | HistOp::Read { p, .. } => {
                        in_flight[*p] += 1;
                        if in_flight[*p] > 1 {
                            overlap = true;
                        }
                    }
                    HistOp::Step => {
                        for f in in_flight.iter_mut() {
                            if *f > 0 {
                                // the script finishes ops FIFO globally; decrementing
                                // the first nonzero is an approximation, so just bail
                                // out of precise tracking and allow the case.
                                *f = f.saturating_sub(1);
                                break;
                            }
                        }
                    }
                }
            }
            overlap
        };
        prop_assume!(!per_process_overlap);
        let history = execute_script(&script);
        prop_assert!(Checker::new(0i64).check(&history).is_linearizable());
    }

    #[test]
    fn prefixes_are_prefixes_and_monotone(script in arb_script(14)) {
        let history = execute_script(&script);
        let prefixes = history.all_prefixes();
        for window in prefixes.windows(2) {
            prop_assert!(window[0].is_prefix_of(&window[1]));
            prop_assert!(window[0].is_prefix_of(&history));
            prop_assert!(window[0].len() <= window[1].len());
        }
    }

    #[test]
    fn linearization_witnesses_always_satisfy_definition2(script in arb_script(14)) {
        let history = execute_script(&script);
        if let Some(witness) = Checker::new(0i64).check(&history).into_witness() {
            prop_assert!(witness.is_linearization_of(&history, &0));
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2 / Algorithm 4 under random schedules
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SimScript {
    decisions: Vec<(usize, bool)>, // (process, start-write? else start-read/step)
}

fn arb_sim_script() -> impl Strategy<Value = SimScript> {
    prop::collection::vec((0usize..3, any::<bool>()), 5..35)
        .prop_map(|decisions| SimScript { decisions })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn algorithm2_runs_are_write_strongly_linearizable(script in arb_sim_script()) {
        let mut sim = VectorSim::new(3);
        let mut next = 1i64;
        for (p, write) in &script.decisions {
            let p = ProcessId(*p);
            if sim.is_idle(p) {
                if *write {
                    sim.start_write(p, next);
                    next += 1;
                } else {
                    sim.start_read(p);
                }
            } else {
                sim.step(p);
            }
        }
        sim.run_round_robin(100_000);
        let trace = sim.trace();
        let lin = vector_linearization(&trace, None).expect("Algorithm 3 output");
        prop_assert!(lin.is_linearization_of(&trace.history, &0));
        // Check the write-prefix property across prefixes of the run.
        let strategy = rlt_core::registers::algorithm3::VectorStrategy::new(trace.clone());
        prop_assert!(
            rlt_core::spec::strategy::check_write_strong_prefix_property(
                &strategy,
                &trace.history,
                &0
            )
            .is_ok()
        );
    }

    #[test]
    fn algorithm4_runs_are_linearizable(script in arb_sim_script()) {
        let mut sim = LamportSim::new(3);
        let mut next = 1i64;
        for (p, write) in &script.decisions {
            let p = ProcessId(*p);
            if sim.is_idle(p) {
                if *write {
                    sim.start_write(p, next);
                    next += 1;
                } else {
                    sim.start_read(p);
                }
            } else {
                sim.step(p);
            }
        }
        sim.run_round_robin(100_000);
        prop_assert!(Checker::new(0i64).check(&sim.history()).is_linearizable());
    }
}

// ---------------------------------------------------------------------------
// The game: mode dichotomy as a property over seeds
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn game_dichotomy_holds_for_arbitrary_seeds(seed in any::<u64>()) {
        use rlt_core::game::{run_game, GameConfig};
        let cfg = GameConfig::new(4).with_max_rounds(200);
        prop_assert!(!run_game(RegisterMode::Linearizable, &cfg, seed).all_returned);
        prop_assert!(run_game(RegisterMode::WriteStrongLinearizable, &cfg, seed).all_returned);
    }
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_roundtrips_through_pairs(a in -100i64..100, b in -100i64..100) {
        let v = Value::from((a, b));
        prop_assert_eq!(v.as_pair(), Some((a, b)));
        prop_assert!(Value::from(a).as_int() == Some(a));
    }
}

// ---------------------------------------------------------------------------
// Schedule grammar (E14): Display -> parse round-trips for every step shape
// ---------------------------------------------------------------------------

mod schedule_grammar {
    use proptest::prelude::*;
    use rlt_core::mp::{ClientEvent, EnvelopeKey, MessageKind, Schedule, ScheduleStep};
    use rlt_core::spec::ProcessId;

    fn arb_kind() -> impl Strategy<Value = MessageKind> {
        (0u8..6, 0u64..1_000).prop_map(|(tag, seq)| match tag {
            0 => MessageKind::WriteReq(seq),
            1 => MessageKind::WriteAck(seq),
            2 => MessageKind::ReadReq(seq),
            3 => MessageKind::ReadReply(seq),
            4 => MessageKind::WriteBackReq(seq),
            _ => MessageKind::WriteBackAck(seq),
        })
    }

    fn arb_key() -> impl Strategy<Value = EnvelopeKey> {
        (0usize..9, 0usize..9, arb_kind()).prop_map(|(from, to, kind)| EnvelopeKey {
            from: ProcessId(from),
            to: ProcessId(to),
            kind,
        })
    }

    fn arb_event() -> impl Strategy<Value = ClientEvent> {
        prop_oneof![
            any::<i64>().prop_map(ClientEvent::StartWrite),
            (0usize..9, any::<i64>()).prop_map(|(p, v)| ClientEvent::StartWriteBy(ProcessId(p), v)),
            (0usize..9).prop_map(|p| ClientEvent::StartRead(ProcessId(p))),
            (0usize..9).prop_map(|p| ClientEvent::Crash(ProcessId(p))),
            (0usize..9).prop_map(|p| ClientEvent::Recover(ProcessId(p))),
        ]
    }

    fn arb_step() -> impl Strategy<Value = ScheduleStep> {
        prop_oneof![
            arb_event().prop_map(ScheduleStep::Event),
            arb_key().prop_map(ScheduleStep::Deliver),
            arb_key().prop_map(ScheduleStep::Drop),
            arb_key().prop_map(ScheduleStep::Duplicate),
            (arb_key(), 1u64..10_000).prop_map(|(k, t)| ScheduleStep::Delay(k, t)),
            (0u32..16, 0u64..256).prop_map(|(id, side)| ScheduleStep::Partition { id, side }),
            (0u32..16).prop_map(ScheduleStep::Heal),
            Just(ScheduleStep::Advance),
        ]
    }

    /// The parser rejects a `Heal` whose partition id was never declared, so the
    /// raw step soup is repaired the same way the fuzzer repairs its mutants:
    /// orphan heals are dropped, everything else survives verbatim.
    fn repair(steps: &[ScheduleStep]) -> Vec<ScheduleStep> {
        let mut steps = steps.to_vec();
        let mut declared: Vec<u32> = Vec::new();
        steps.retain(|step| match step {
            ScheduleStep::Partition { id, .. } => {
                declared.push(*id);
                true
            }
            ScheduleStep::Heal(id) => declared.contains(id),
            _ => true,
        });
        steps
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn schedule_display_parse_round_trips(raw in prop::collection::vec(arb_step(), 0..40)) {
            let schedule = Schedule { steps: repair(&raw) };
            let text = schedule.to_string();
            let parsed: Schedule = text.parse().expect("rendered schedule must parse");
            prop_assert_eq!(parsed, schedule);
        }

        #[test]
        fn parsing_ignores_blank_and_comment_lines(raw in prop::collection::vec(arb_step(), 1..20)) {
            let schedule = Schedule { steps: repair(&raw) };
            let mut decorated = String::from("# header comment\n\n");
            for line in schedule.to_string().lines() {
                decorated.push_str(line);
                decorated.push_str("\n\n# trailing note\n");
            }
            let parsed: Schedule = decorated.parse().expect("decorated schedule must parse");
            prop_assert_eq!(parsed, schedule);
        }

        #[test]
        fn parsing_tolerates_sloppy_whitespace(
            raw in prop::collection::vec(arb_step(), 1..20),
            pad in 1usize..4,
        ) {
            let schedule = Schedule { steps: repair(&raw) };
            // Double every inner space, then pad both line ends: the grammar
            // normalizes runs of whitespace, so the step soup must survive.
            let sloppy: String = schedule
                .to_string()
                .lines()
                .map(|line| {
                    let stretched = line.replace(' ', &" ".repeat(pad + 1));
                    format!("{}{}{}\n", " ".repeat(pad), stretched, "\t".repeat(pad))
                })
                .collect();
            let parsed: Schedule = sloppy.parse().expect("sloppy whitespace must parse");
            prop_assert_eq!(parsed, schedule);
        }

        #[test]
        fn unknown_heal_errors_name_their_line(heal_line in 0usize..10, id in 0u32..64) {
            // `advance` filler with one orphan heal: the error must carry the
            // 1-based line number of the heal, not of some later step.
            let mut text = String::new();
            for i in 0..10 {
                if i == heal_line {
                    text.push_str(&format!("heal {id}\n"));
                } else {
                    text.push_str("advance\n");
                }
            }
            let err = text.parse::<Schedule>().expect_err("orphan heal must not parse");
            prop_assert_eq!(err.line, heal_line + 1);
            prop_assert!(err.message.contains("unknown partition"), "got: {}", err.message);
        }

        #[test]
        fn parse_errors_carry_the_offending_line_number(garbage_line in 1usize..10) {
            let mut text = String::new();
            for i in 0..10 {
                if i == garbage_line {
                    text.push_str("gibberish step\n");
                } else {
                    text.push_str("advance\n");
                }
            }
            let err = text.parse::<Schedule>().expect_err("gibberish must not parse");
            prop_assert_eq!(err.line, garbage_line + 1);
        }

        #[test]
        fn mutated_schedules_round_trip_and_replay_deterministically(
            record_seed in 0u64..1_000,
            mutate_seed in 0u64..1_000,
            rounds in 1usize..6,
        ) {
            // Satellite of the fuzzer: not just *recorded* schedules round-trip —
            // every reachable mutant does too, and replays bit-identically.
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use rlt_core::mp::fuzz::{mutate_schedule, record_clean_corpus};
            use rlt_core::mp::FaultyAbdCluster;

            let seeds = record_clean_corpus(
                || FaultyAbdCluster::new(5, ProcessId(0)),
                2,
                40,
                record_seed,
                false,
            );
            let mut rng = StdRng::seed_from_u64(mutate_seed);
            let mut mutant = seeds[0].clone();
            for _ in 0..rounds {
                mutant = mutate_schedule(&mutant, &seeds[1], 200, &mut rng);
            }
            let text = mutant.to_string();
            let parsed: Schedule = text.parse().expect("mutant must parse");
            prop_assert_eq!(&parsed, &mutant);
            let mut a = FaultyAbdCluster::new(5, ProcessId(0));
            let mut b = FaultyAbdCluster::new(5, ProcessId(0));
            let da = mutant.replay_on(&mut a);
            let db = parsed.replay_on(&mut b);
            prop_assert_eq!(da, db);
            prop_assert_eq!(a.history(), b.history());
        }
    }
}
