//! Cross-crate integration tests for the register constructions (Algorithms 2, 3, 4),
//! the Theorem 13 counterexample, and the relationship between the three notions of
//! linearizability on concrete executions.

use rlt_core::registers::algorithm2::VectorSim;
use rlt_core::registers::algorithm3::{vector_linearization, VectorStrategy};
use rlt_core::registers::algorithm4::LamportSim;
use rlt_core::registers::counterexample::{
    build_base, continue_case1, continue_case2, theorem13_family,
};
use rlt_core::registers::schedule::{random_run, WorkloadParams};
use rlt_core::registers::threaded::{LamportRegister, VectorRegister};
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::strong::ExtensionFamily;
use rlt_core::spec::{Checker, ProcessId};
use std::thread;

#[test]
fn theorem10_write_strong_linearizability_over_many_random_schedules() {
    for seed in 0..12u64 {
        let mut sim = VectorSim::new(4);
        random_run(
            &mut sim,
            seed,
            WorkloadParams {
                decisions: 45,
                write_fraction: 0.5,
            },
        );
        let trace = sim.trace();
        let lin = vector_linearization(&trace, None).expect("Algorithm 3 output");
        assert!(lin.is_linearization_of(&trace.history, &0), "seed {seed}");
        check_write_strong_prefix_property(&VectorStrategy::new(trace.clone()), &trace.history, &0)
            .unwrap_or_else(|v| panic!("Theorem 10 violated on seed {seed}: {v}"));
    }
}

#[test]
fn theorem12_lamport_register_is_linearizable_over_many_random_schedules() {
    for seed in 0..12u64 {
        let mut sim = LamportSim::new(4);
        random_run(
            &mut sim,
            seed,
            WorkloadParams {
                decisions: 45,
                write_fraction: 0.5,
            },
        );
        assert!(
            Checker::new(0i64).check(&sim.history()).is_linearizable(),
            "Theorem 12 violated on seed {seed}"
        );
    }
}

#[test]
fn theorem13_impossibility_is_reproduced_exactly() {
    let outcome = theorem13_family();
    assert!(outcome.demonstrates_impossibility());
    let checker = Checker::new(0i64);
    assert!(checker.check(&outcome.case1).is_linearizable());
    assert!(checker.check(&outcome.case2).is_linearizable());
    assert!(outcome.base.is_prefix_of(&outcome.case1));
    assert!(outcome.base.is_prefix_of(&outcome.case2));
}

#[test]
fn algorithm2_handles_the_figure4_schedule_without_ambiguity() {
    // Run Algorithm 2 through the same scheduling pattern as the Theorem 13
    // counterexample. Unlike Algorithm 4, the vector-timestamp construction commits
    // enough information that its own linearization function handles both continuations
    // consistently (its committed write prefix is the same in both).
    let base = {
        let mut sim = VectorSim::new(3);
        sim.start_write(ProcessId(0), 10);
        sim.step(ProcessId(0));
        sim.step(ProcessId(0));
        sim.start_write(ProcessId(1), 20);
        sim.run_to_completion(ProcessId(1));
        sim
    };
    // Continuation A: w1 completes, then a read.
    let mut a = base.clone();
    a.run_to_completion(ProcessId(0));
    a.start_read(ProcessId(2));
    a.run_to_completion(ProcessId(2));
    // Continuation B: p2 writes first, then w1 completes, then a read.
    let mut b = base.clone();
    b.start_write(ProcessId(2), 30);
    b.run_to_completion(ProcessId(2));
    b.run_to_completion(ProcessId(0));
    b.start_read(ProcessId(2));
    b.run_to_completion(ProcessId(2));

    // Algorithm 3 linearizes the base and both continuations with a consistent write
    // prefix (this is what write strong-linearizability means operationally).
    let cut = base.now();
    let ta = a.trace();
    let tb = b.trace();
    let base_lin_a = vector_linearization(&ta, Some(cut)).unwrap();
    let base_lin_b = vector_linearization(&tb, Some(cut)).unwrap();
    assert_eq!(base_lin_a.write_ids(), base_lin_b.write_ids());
    let full_a = vector_linearization(&ta, None).unwrap();
    let full_b = vector_linearization(&tb, None).unwrap();
    assert!(base_lin_a.is_write_prefix_of(&full_a));
    assert!(base_lin_b.is_write_prefix_of(&full_b));
}

#[test]
fn lamport_counterexample_family_also_fails_through_the_generic_checker() {
    // Rebuild the family through the public helpers and feed it to the generic
    // existential checker — same verdict as the packaged outcome.
    let base_sim = build_base();
    let base = base_sim.history();
    let (s1, _) = continue_case1(base_sim.clone());
    let (s2, _) = continue_case2(base_sim);
    let family = ExtensionFamily::new(base, vec![s1.history(), s2.history()], 0i64);
    assert!(!family.check_write_strong(10_000).admits);
    // Strong linearizability (prefix over all operations) is at least as hard.
    assert!(!family.check_strong(10_000).admits);
}

#[test]
fn threaded_registers_survive_heavier_concurrency() {
    let vector = VectorRegister::new(6);
    let lamport = LamportRegister::new(6);
    let mut handles = Vec::new();
    for t in 0..6usize {
        let v = vector.clone();
        let l = lamport.clone();
        handles.push(thread::spawn(move || {
            for i in 0..2 {
                let value = (t * 10 + i) as i64 + 1;
                if t % 3 == 0 {
                    v.write(ProcessId(t), value);
                    l.write(ProcessId(t), value);
                } else {
                    let _ = v.read(ProcessId(t));
                    let _ = l.read(ProcessId(t));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let checker = Checker::new(0i64);
    assert!(checker.check(&vector.history()).is_linearizable());
    assert!(checker.check(&lamport.history()).is_linearizable());
}

#[test]
fn vector_and_lamport_agree_on_sequential_semantics() {
    let v = VectorRegister::new(3);
    let l = LamportRegister::new(3);
    for (step, value) in [(0usize, 5i64), (1, 9), (2, 13)] {
        v.write(ProcessId(step), value);
        l.write(ProcessId(step), value);
        assert_eq!(v.read(ProcessId((step + 1) % 3)), value);
        assert_eq!(l.read(ProcessId((step + 1) % 3)), value);
    }
}
