//! Cross-crate integration tests for Algorithm 1, the Theorem 6 adversary, the
//! Theorem 7 termination guarantee, and the Corollary 9 wrapper.

use rlt_core::game::{compare_modes, run_game, run_wrapped, GameConfig};
use rlt_core::sim::RegisterMode;
use rlt_core::spec::{Checker, Value};

#[test]
fn theorem6_and_theorem7_dichotomy_end_to_end() {
    let cfg = GameConfig::new(5).with_max_rounds(80);
    for seed in 0..4u64 {
        let lin = run_game(RegisterMode::Linearizable, &cfg, seed);
        let wsl = run_game(RegisterMode::WriteStrongLinearizable, &cfg, seed);
        let atomic = run_game(RegisterMode::Atomic, &cfg, seed);
        assert!(!lin.all_returned, "seed {seed}: Theorem 6 violated");
        assert!(wsl.all_returned, "seed {seed}: Theorem 7 violated");
        assert!(
            atomic.all_returned,
            "seed {seed}: atomic registers must terminate"
        );
    }
}

#[test]
fn theorem6_adversary_stays_within_linearizability() {
    // The adversary may only exploit powers that linearizability grants; the recorded
    // multi-round history must therefore be linearizable.
    let cfg = GameConfig::new(4)
        .with_max_rounds(2)
        .with_linearizability_check();
    let outcome = run_game(RegisterMode::Linearizable, &cfg, 11);
    assert_eq!(outcome.history_linearizable, Some(true));
    assert!(!outcome.all_returned);
}

#[test]
fn wsl_game_histories_are_linearizable_and_terminate() {
    let cfg = GameConfig::new(4)
        .with_max_rounds(10)
        .with_linearizability_check();
    for seed in 0..3u64 {
        let outcome = run_game(RegisterMode::WriteStrongLinearizable, &cfg, seed);
        assert_eq!(outcome.history_linearizable, Some(true), "seed {seed}");
    }
}

#[test]
fn theorem6_adversary_survives_long_schedules_across_many_seeds() {
    // The Theorem 6 adversary must keep the linearizable game alive indefinitely —
    // not just for the short schedules the original suite used. 400 rounds is 5x the
    // old horizon; the dichotomy must hold for every seed and for larger player sets.
    for &n in &[4usize, 6] {
        let cfg = GameConfig::new(n).with_max_rounds(400);
        for seed in 0..4u64 {
            let lin = run_game(RegisterMode::Linearizable, &cfg, seed);
            assert!(
                !lin.all_returned,
                "n={n} seed={seed}: adversary lost after {} rounds",
                lin.rounds_executed
            );
            assert_eq!(lin.rounds_executed, 400, "n={n} seed={seed}");
            let wsl = run_game(RegisterMode::WriteStrongLinearizable, &cfg, seed);
            assert!(wsl.all_returned, "n={n} seed={seed}: Theorem 7 violated");
        }
    }
}

#[test]
fn theorem6_long_checked_schedule_stays_linearizable() {
    // A longer adversary schedule with the full linearizability check on the recorded
    // multi-register history — affordable now that the engine checks per register in
    // parallel. The old suite capped checked runs at 2 rounds.
    let cfg = GameConfig::new(4)
        .with_max_rounds(12)
        .with_linearizability_check();
    for seed in 0..4u64 {
        let outcome = run_game(RegisterMode::Linearizable, &cfg, seed);
        assert_eq!(outcome.history_linearizable, Some(true), "seed {seed}");
        assert!(!outcome.all_returned, "seed {seed}");
        assert!(outcome.operations_recorded > 0, "seed {seed}");
    }
}

#[test]
fn corollary8_mode_comparison_shape() {
    let cfg = GameConfig::new(4).with_max_rounds(200);
    let table = compare_modes(&cfg, 150, 42);
    let get = |mode: RegisterMode| {
        table
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, s)| s.clone())
            .unwrap()
    };
    let lin = get(RegisterMode::Linearizable);
    let wsl = get(RegisterMode::WriteStrongLinearizable);
    let atomic = get(RegisterMode::Atomic);

    // Linearizable: the adversary wins every trial.
    assert_eq!(lin.terminated_fraction, 0.0);
    // WSL and atomic: every trial terminates, quickly, with a geometric survival curve.
    assert!(wsl.terminated_fraction > 0.99);
    assert!(atomic.terminated_fraction > 0.99);
    assert!(wsl.mean_termination_round.unwrap() < 3.5);
    assert!(atomic.mean_termination_round.unwrap() < 3.5);
    assert!(wsl.survival_after_first_round() < 0.7);
}

#[test]
fn corollary9_wrapper_dichotomy() {
    let inputs = vec![1, 0, 1, 1];
    let blocked = run_wrapped(RegisterMode::Linearizable, 4, inputs.clone(), 40, 5);
    assert!(!blocked.terminated());
    assert!(blocked.consensus.is_none());

    let done = run_wrapped(
        RegisterMode::WriteStrongLinearizable,
        4,
        inputs.clone(),
        400,
        5,
    );
    assert!(done.terminated());
    let consensus = done.consensus.unwrap();
    assert!(consensus.agreement_holds());
    assert!(consensus.validity_holds(&inputs));
}

#[test]
fn bounded_variant_preserves_the_dichotomy() {
    let cfg = GameConfig::new(4)
        .with_max_rounds(60)
        .with_bounded_registers();
    assert!(!run_game(RegisterMode::Linearizable, &cfg, 1).all_returned);
    assert!(run_game(RegisterMode::WriteStrongLinearizable, &cfg, 1).all_returned);
}

#[test]
fn game_operations_use_the_three_shared_registers() {
    // Sanity: the recorded history touches exactly R1, R2 and C.
    let cfg = GameConfig::new(4).with_max_rounds(3);
    let mut mem = rlt_core::sim::SharedMem::new(RegisterMode::Atomic, Value::Init);
    // Build a tiny history through the public game API instead: run and count ops.
    let outcome = run_game(RegisterMode::Atomic, &cfg, 3);
    assert!(outcome.operations_recorded > 0);
    // Use the spec checker on a trivially constructed history to make sure the facade
    // crate exposes everything needed here.
    mem.write(
        rlt_core::spec::ProcessId(0),
        rlt_core::game::R1,
        Value::Int(1),
    );
    assert!(Checker::new(Value::Init)
        .check(&mem.history())
        .is_linearizable());
}
