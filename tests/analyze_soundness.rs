//! Soundness proptests for the static schedule analyzer (`rlt_mp::analyze`)
//! against actual replay, over mutated schedule soups on all three cluster
//! flavors:
//!
//! * **Dead means dead** — every step the analyzer marks dead is skipped by
//!   [`Schedule::replay_trace_on`] (zero side effects). This is the contract
//!   the fuzz triage and the ddmin replay cache lean on.
//! * **Exact fault machinery is complete** — crash/recover/heal state is
//!   tracked exactly (not conservatively), so for `recover` and `heal` steps
//!   the analyzer verdict is an *iff*: dead ⇔ replay skips.
//! * **Scrub/canonicalize are replay-equivalent** — dropping dead steps and
//!   sorting commuting request deliveries reproduces the identical history,
//!   fault log, and delivery count, and leaves nothing dead behind.
//! * **Clean recordings are fully live** — on an analyzer-clean recorded
//!   schedule every step fires.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlt_core::mp::analyze::{analyze, canonicalize, scrub, ClusterModel};
use rlt_core::mp::fuzz::{mutate_schedule, record_clean_corpus};
use rlt_core::mp::{
    AbdCluster, ClientEvent, FaultyAbdCluster, MessageCluster, MwAbdCluster, Schedule, ScheduleStep,
};
use rlt_core::spec::ProcessId;

/// Records two clean schedules and stacks `rounds` crossover mutations on top:
/// the exact population the fuzzer's static triage sees.
fn soup<C, F>(make: &F, multi_writer: bool, seed: u64, rounds: usize) -> Schedule
where
    C: MessageCluster,
    F: Fn() -> C,
{
    let seeds = record_clean_corpus(make, 2, 50, seed, multi_writer);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA11CE);
    let mut schedule = seeds[0].clone();
    for _ in 0..rounds {
        schedule = mutate_schedule(&schedule, &seeds[1], 300, &mut rng);
    }
    schedule
}

fn assert_sound<C, F>(make: F, model: &ClusterModel, multi_writer: bool, seed: u64, rounds: usize)
where
    C: MessageCluster,
    F: Fn() -> C,
{
    let schedule = soup(&make, multi_writer, seed, rounds);
    let analysis = analyze(&schedule, model);
    let trace = schedule.replay_trace_on(&mut make());
    for (i, step) in schedule.steps.iter().enumerate() {
        if analysis.is_dead(i) {
            assert!(
                !trace.fired[i],
                "analyzer-dead step {i} `{step}` fired in replay of\n{schedule}"
            );
        }
        // Crash/partition state is exact, so these verdicts are an iff.
        if matches!(
            step,
            ScheduleStep::Event(ClientEvent::Recover(_)) | ScheduleStep::Heal(_)
        ) {
            assert_eq!(
                trace.fired[i],
                !analysis.is_dead(i),
                "step {i} `{step}`: exact-tracked verdict diverged in\n{schedule}"
            );
        }
    }
    // Scrubbing dead steps and canonicalizing commuting deliveries must not
    // change what the replay computes.
    let cleaned = canonicalize(&scrub(&schedule, &analysis));
    let mut a = make();
    let mut b = make();
    let da = schedule.replay_on(&mut a);
    let db = cleaned.replay_on(&mut b);
    assert_eq!(da, db, "delivery count changed by scrub+canonicalize");
    assert_eq!(a.history(), b.history(), "history changed");
    assert_eq!(a.fault_log(), b.fault_log(), "fault log changed");
    // Scrubbing is a fixpoint: nothing dead remains in its own output.
    assert_eq!(
        analyze(&scrub(&schedule, &analysis), model).dead_steps(),
        0,
        "scrub left dead steps behind"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dead_steps_never_fire_on_the_correct_sw_cluster(seed in 0u64..1 << 32, rounds in 1usize..6) {
        assert_sound(
            || AbdCluster::new(5, ProcessId(0)),
            &ClusterModel::single_writer(5, ProcessId(0)),
            false,
            seed,
            rounds,
        );
    }

    #[test]
    fn dead_steps_never_fire_on_the_faulty_sw_cluster(seed in 0u64..1 << 32, rounds in 1usize..6) {
        assert_sound(
            || FaultyAbdCluster::new(5, ProcessId(0)),
            &ClusterModel::single_writer(5, ProcessId(0)).without_write_backs(),
            false,
            seed,
            rounds,
        );
    }

    #[test]
    fn dead_steps_never_fire_on_the_mw_cluster(seed in 0u64..1 << 32, rounds in 1usize..6) {
        assert_sound(
            || MwAbdCluster::new(5),
            &ClusterModel::multi_writer(5),
            true,
            seed,
            rounds,
        );
    }

    #[test]
    fn permissive_model_is_sound_for_every_flavor(seed in 0u64..1 << 32, rounds in 1usize..6) {
        // The model-free analyzer must stay sound even with no protocol
        // knowledge at all (it just proves less dead).
        assert_sound(
            || MwAbdCluster::new(5).without_write_back(),
            &ClusterModel::permissive(),
            true,
            seed,
            rounds,
        );
    }
}

#[test]
fn clean_recordings_fire_every_step() {
    let sw = record_clean_corpus(|| AbdCluster::new(5, ProcessId(0)), 4, 60, 31, false);
    let mw = record_clean_corpus(|| MwAbdCluster::new(5), 4, 60, 32, true);
    let sw_model = ClusterModel::single_writer(5, ProcessId(0));
    let mw_model = ClusterModel::multi_writer(5);
    for (schedule, model, make_trace) in sw
        .iter()
        .map(|s| {
            (
                s,
                &sw_model,
                s.replay_trace_on(&mut AbdCluster::new(5, ProcessId(0))),
            )
        })
        .chain(
            mw.iter()
                .map(|s| (s, &mw_model, s.replay_trace_on(&mut MwAbdCluster::new(5)))),
        )
    {
        let analysis = analyze(schedule, model);
        assert!(analysis.is_clean(), "{:?}", analysis.diagnostics);
        assert!(
            make_trace.fired.iter().all(|&f| f),
            "a recorded step failed to fire"
        );
    }
}
