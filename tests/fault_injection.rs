//! Integration tests for the virtual-time fault-injection core (experiment E14):
//! partitions, loss, duplication, delays, crash-recovery, and timeout-driven retry,
//! all recorded as first-class schedule steps that replay bit-identically.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlt_core::mp::adversary::ReplyWithholdingAdversary;
use rlt_core::mp::minimize::minimize_schedule;
use rlt_core::mp::{
    hunt_with_faults, AbdCluster, FaultPlan, FaultScenario, FaultyAbdCluster, LinkFaults,
    MessageCluster, Partition, RetryPolicy, Schedule, ScheduleStep, UniformAdversary,
};
use rlt_core::spec::{Checker, ProcessId};

const N: usize = 5;
const WRITER: ProcessId = ProcessId(0);

fn checker() -> Checker<i64> {
    Checker::new(0i64)
}

/// The canonical E14 failure scenario: 20% loss everywhere, a partition window
/// cutting `{0, 1}` (the writer's side) off from the majority `{2, 3, 4}`, healed a
/// few deliveries later.
fn lossy_partition_scenario() -> FaultScenario {
    FaultScenario::new(FaultPlan::lossy(0.2), 0xfa01).with_partition_window(
        6,
        12,
        Partition::new(1, "writer-side-cut", [ProcessId(0), ProcessId(1)]),
    )
}

fn has_step(schedule: &Schedule, pred: impl Fn(&ScheduleStep) -> bool) -> bool {
    schedule.steps.iter().any(pred)
}

/// The headline acceptance run: a seeded lossy-partition hunt on the faulty cluster
/// (retries enabled) that ends in a checker-rejected history and whose schedule
/// contains drop, partition, and timer (advance) steps. Returns `(seed, schedule)`.
fn acceptance_hunt() -> (u64, Schedule) {
    let checker = checker();
    let scenario = lossy_partition_scenario();
    for seed in 0..64u64 {
        let mut adversary = ReplyWithholdingAdversary::new();
        let report = hunt_with_faults(
            FaultyAbdCluster::new(N, WRITER).with_retries(RetryPolicy::default()),
            &mut adversary,
            &scenario,
            seed,
            600,
            &checker,
        );
        if report.violation_at.is_none() {
            continue;
        }
        let s = &report.schedule;
        if has_step(s, |x| matches!(x, ScheduleStep::Drop(_)))
            && has_step(s, |x| matches!(x, ScheduleStep::Partition { .. }))
            && has_step(s, |x| matches!(x, ScheduleStep::Heal(_)))
            && has_step(s, |x| matches!(x, ScheduleStep::Advance))
        {
            return (seed, report.schedule);
        }
    }
    panic!("no seed in 0..64 produced a violation with drop+partition+heal+advance steps");
}

#[test]
fn lossy_partition_hunt_finds_replayable_minimizable_inversion() {
    let checker = checker();
    let (_seed, schedule) = acceptance_hunt();

    // The recorded schedule replays bit-identically: same history, twice.
    let mut a = FaultyAbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
    let mut b = FaultyAbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
    schedule.replay_on(&mut a);
    schedule.replay_on(&mut b);
    assert_eq!(
        a.history(),
        b.history(),
        "fault replay must be deterministic"
    );
    assert!(
        matches!(checker.check(&a.history()).outcome(), Ok(false)),
        "the replayed history is still rejected"
    );

    // ddmin shrinks it — fault steps are first-class, so the minimizer needs no
    // special cases — and the shrunk schedule still replays to a rejected history
    // exhibiting the new/old inversion (a read of the new value before a read of an
    // older one).
    let minimized = minimize_schedule(
        || FaultyAbdCluster::new(N, WRITER).with_retries(RetryPolicy::default()),
        &schedule,
        |h| matches!(checker.check(h).outcome(), Ok(false)),
        0,
    );
    assert!(minimized.schedule.len() <= schedule.len());
    let mut shrunk = FaultyAbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
    minimized.schedule.replay_on(&mut shrunk);
    let h = shrunk.history();
    assert!(matches!(checker.check(&h).outcome(), Ok(false)));
    let reads: Vec<i64> = h.reads().filter_map(|r| r.read_value().copied()).collect();
    let inverted = reads
        .iter()
        .zip(reads.iter().skip(1))
        .any(|(first, later)| first > later);
    assert!(
        inverted,
        "minimized counterexample must be a new/old inversion, got reads {reads:?}"
    );
}

#[test]
fn acceptance_schedule_is_harmless_on_correct_abd_with_retries() {
    let checker = checker();
    let (_seed, schedule) = acceptance_hunt();

    // The very same fault schedule, replayed on the *correct* cluster with retries:
    // after the replayed prefix, driving deliveries and virtual time to quiescence
    // completes every operation of a non-crashed client, and the history checks
    // linearizable — Theorem 14 under faults.
    let mut correct = AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
    schedule.replay_on(&mut correct);
    let mut rng = StdRng::seed_from_u64(7);
    correct.run_to_quiescence_with_time(&mut rng, 200_000);
    let h = correct.history();
    for pending in h.pending() {
        assert!(
            correct.is_crashed(pending.process),
            "operation {:?} by non-crashed {} left pending",
            pending.id,
            pending.process
        );
    }
    assert!(checker.check(&h).is_linearizable());
}

#[test]
fn abd_with_retries_stays_linearizable_under_drop_partition_heal() {
    // Theorem 14 under faults, pinned: 5 replicas, p = 0.2 loss on every link, a
    // partition installed and healed mid-run — the correct cluster never produces a
    // rejected history, across seeds and with deliveries driven to quiescence.
    let checker = checker();
    let scenario = lossy_partition_scenario();
    for seed in 0..12u64 {
        let mut adversary = UniformAdversary::new(seed ^ 0xabd);
        let report = hunt_with_faults(
            AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default()),
            &mut adversary,
            &scenario,
            seed,
            400,
            &checker,
        );
        assert!(
            report.violation_at.is_none(),
            "correct ABD rejected under faults at seed {seed}"
        );
        // And the recorded run replays to a linearizable history on a fresh cluster.
        let mut replay = AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
        report.schedule.replay_on(&mut replay);
        assert!(checker.check(&replay.history()).is_linearizable());
    }
}

#[test]
fn fault_schedules_replay_bit_identically_across_both_clusters() {
    // Mixed drop/duplicate/delay plan plus a crash and a recovery: whatever the hunt
    // recorded, two fresh replays of the same cluster type agree exactly.
    let plan = FaultPlan {
        default: LinkFaults {
            drop: 0.15,
            duplicate: 0.1,
            delay: 0.1,
            delay_ticks: (8, 40),
        },
        overrides: Vec::new(),
    };
    let scenario = FaultScenario::new(plan, 0xd1ce)
        .with_partition_window(8, 14, Partition::new(2, "minority-cut", [ProcessId(4)]))
        .with_crash(20, ProcessId(3))
        .with_recovery(40, ProcessId(3));
    let checker = checker();
    for seed in 0..6u64 {
        let mut adversary = UniformAdversary::new(seed);
        let report = hunt_with_faults(
            AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default()),
            &mut adversary,
            &scenario,
            seed,
            300,
            &checker,
        );
        let mut a = AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
        let mut b = AbdCluster::new(N, WRITER).with_retries(RetryPolicy::default());
        let da = report.schedule.replay_on(&mut a);
        let db = report.schedule.replay_on(&mut b);
        assert_eq!(da, db, "seed {seed}: delivery counts diverged");
        assert_eq!(a.history(), b.history(), "seed {seed}: histories diverged");
        assert_eq!(
            a.fault_log(),
            b.fault_log(),
            "seed {seed}: fault logs diverged"
        );
    }
}

#[test]
fn recovered_replica_rejoins_with_persisted_state() {
    let mut c = AbdCluster::new(N, WRITER);
    let mut rng = StdRng::seed_from_u64(3);
    c.start_write(7);
    c.run_to_quiescence(&mut rng, 10_000);
    let persisted = c.replica_state(ProcessId(4));
    assert_eq!(persisted, (1, 7));

    c.crash(ProcessId(4));
    c.start_write(8);
    c.run_to_quiescence(&mut rng, 10_000);
    assert!(
        c.is_idle(WRITER),
        "write completes on the surviving majority"
    );

    assert!(c.recover(ProcessId(4)));
    assert!(!c.recover(ProcessId(4)), "double recovery is a no-op");
    assert_eq!(
        c.replica_state(ProcessId(4)),
        persisted,
        "the replica's (timestamp, value) survives the crash"
    );
    // The recovered process is a full participant again: it can read, and its stale
    // state is repaired by the read's query+write-back.
    c.start_read(ProcessId(4));
    c.run_to_quiescence(&mut rng, 10_000);
    let h = c.history();
    assert_eq!(h.pending().count(), 0);
    assert_eq!(h.reads().next().unwrap().read_value(), Some(&8));
    assert!(checker().check(&h).is_linearizable());
}

#[test]
fn crashed_incarnation_traffic_stays_purged_after_recovery() {
    let mut c = AbdCluster::new(N, WRITER);
    let mut rng = StdRng::seed_from_u64(4);
    c.start_read(ProcessId(2));
    // The read's queries are in flight when the reader crashes: everything it sent
    // (and everything addressed to it) is purged, and recovery must not resurrect it.
    c.crash(ProcessId(2));
    assert!(c
        .inflight()
        .iter()
        .all(|(_, e)| e.from != ProcessId(2) && e.to != ProcessId(2)));
    assert!(c.recover(ProcessId(2)));
    assert!(c.is_idle(ProcessId(2)), "the recovered client starts idle");
    c.run_to_quiescence(&mut rng, 10_000);
    let h = c.history();
    assert_eq!(
        h.pending().count(),
        1,
        "the crashed incarnation's read stays pending forever"
    );
    // A fresh incarnation read works.
    c.start_read(ProcessId(2));
    c.run_to_quiescence(&mut rng, 10_000);
    assert_eq!(c.history().pending().count(), 1);
    assert!(checker().check(&c.history()).is_linearizable());
}

#[test]
fn fault_log_counts_sends_to_crashed_processes() {
    let mut c = AbdCluster::new(N, WRITER);
    let mut rng = StdRng::seed_from_u64(5);
    c.crash(ProcessId(4));
    assert_eq!(c.fault_log().dead_sends, 0);
    c.start_write(1);
    // The write broadcast includes the crashed process: one dead send, counted.
    assert_eq!(c.fault_log().dead_sends, 1);
    c.run_to_quiescence(&mut rng, 10_000);
    c.start_read(ProcessId(1));
    c.run_to_quiescence(&mut rng, 10_000);
    // The read's query broadcast and its write-back broadcast add one each.
    assert_eq!(c.fault_log().dead_sends, 3);
    assert_eq!(c.fault_log().drops, 0);
    assert_eq!(c.fault_log().duplicates, 0);
}

#[test]
fn fault_log_counts_crash_purges() {
    let mut c = AbdCluster::new(N, WRITER);
    c.start_write(1);
    assert_eq!(c.inflight_count(), N);
    c.crash(WRITER);
    let log = c.fault_log();
    assert_eq!(log.purges, N as u64, "all five write requests purged");
    assert_eq!(c.inflight_count(), 0);
}

#[test]
fn retries_complete_operations_across_a_partition_heal() {
    // Without retries, a write wedged by a partition stays wedged after the heal only
    // if its traffic was lost; with the partition parking (not dropping) messages the
    // heal releases them. Retries additionally survive genuine loss: drop every
    // message of the first broadcast, then let the timeout re-send.
    let mut c = AbdCluster::new(N, WRITER).with_retries(RetryPolicy {
        base: 8,
        cap: 64,
        max_attempts: 8,
    });
    let mut rng = StdRng::seed_from_u64(6);
    c.start_write(5);
    // Lose the writer's entire first broadcast.
    while let Some(slot) = c.inflight().oldest_matching(|_| true) {
        c.net_mut().drop_slot(slot);
    }
    assert_eq!(c.inflight_count(), 0);
    assert!(!c.is_idle(WRITER), "the write is wedged");
    // Virtual time advances to the retry timer; the retransmission completes it.
    let delivered = c.run_to_quiescence_with_time(&mut rng, 10_000);
    assert!(delivered > 0);
    assert!(c.is_idle(WRITER), "the retransmitted write completed");
    let log = c.fault_log();
    assert_eq!(log.drops, N as u64);
    assert!(log.timer_fires >= 1);
    assert!(log.retransmissions >= N as u64);
    assert!(checker().check(&c.history()).is_linearizable());
}

#[test]
fn schedule_text_round_trips_for_fault_heavy_runs() {
    // Display -> parse round-trip on a real recorded fault schedule (the proptest in
    // property_tests.rs covers synthetic step soups; this pins a genuine run).
    let (_seed, schedule) = acceptance_hunt();
    let text = schedule.to_string();
    let parsed: Schedule = text.parse().expect("recorded schedule parses");
    assert_eq!(parsed, schedule);
    // And the textual form actually mentions the fault vocabulary.
    assert!(text.contains("drop "));
    assert!(text.contains("partition "));
    assert!(text.contains("advance"));
}
