//! Backward-compatibility proof: this example uses **only** the pre-`Checker`
//! free-function API — `check_linearizable`, `check_linearizable_report`,
//! `check_linearizable_batch`, `enumerate_linearizations`,
//! `try_enumerate_linearizations` — exactly as pre-redesign code would. It must keep
//! compiling (deprecation warnings allowed, hence the crate-level `allow`) and keep
//! returning the same answers as the session API; CI builds and runs it.
//!
//! Run with: `cargo run --example deprecated_shims`

#![allow(deprecated)]

use rlt_core::spec::{
    check_linearizable, check_linearizable_batch, check_linearizable_report,
    enumerate_linearizations, try_enumerate_linearizations, HistoryBuilder, ProcessId, RegisterId,
    DEFAULT_STATE_LIMIT,
};

fn main() {
    let reg = RegisterId(0);
    let mut b = HistoryBuilder::new();
    let w0 = b.invoke_write(ProcessId(0), reg, 1i64);
    let w1 = b.invoke_write(ProcessId(1), reg, 2i64);
    b.respond_write(w0);
    b.respond_write(w1);
    b.read(ProcessId(2), reg, 2i64);
    let history = b.build();

    let witness = check_linearizable(&history, &0).expect("linearizable");
    println!("witness: {witness}");

    let report = check_linearizable_report(&history, &0, DEFAULT_STATE_LIMIT);
    assert!(report.is_linearizable());
    assert!(!report.limit_hit);
    println!(
        "report: {} states explored, {} memoized",
        report.states_explored, report.states_memoized
    );

    let batch = check_linearizable_batch(std::slice::from_ref(&history), &0, DEFAULT_STATE_LIMIT);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0], report);
    println!("batch report matches the solo report");

    let all = enumerate_linearizations(&history, &0, 100);
    let bounded = try_enumerate_linearizations(&history, &0, 100, 1_000_000).expect("within cap");
    assert_eq!(all, bounded);
    println!("{} linearizations enumerated", all.len());

    let mut b = HistoryBuilder::new();
    b.write(ProcessId(0), reg, 1i64);
    b.read(ProcessId(1), reg, 0i64); // stale
    assert!(check_linearizable(&b.build(), &0).is_none());
    println!("stale read rejected — the deprecated surface still answers correctly");
}
