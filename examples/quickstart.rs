//! Quickstart: build a write strongly-linearizable MWMR register from SWMR registers
//! (Algorithm 2), exercise it concurrently, and verify its guarantees with the checkers.
//!
//! Run with: `cargo run --example quickstart`

use rlt_core::registers::algorithm2::VectorSim;
use rlt_core::registers::algorithm3::{vector_linearization, VectorStrategy};
use rlt_core::registers::threaded::VectorRegister;
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::{Checker, ProcessId};
use std::thread;

fn main() {
    println!("== Part 1: the step simulator (full control over interleavings) ==");
    // Three processes: p0 and p1 write concurrently, p2 reads.
    let mut sim = VectorSim::new(3);
    sim.start_write(ProcessId(0), 10);
    sim.start_write(ProcessId(1), 20);
    // Interleave the two writes step by step.
    for _ in 0..2 {
        sim.step(ProcessId(0));
        sim.step(ProcessId(1));
    }
    sim.run_round_robin(10_000);
    sim.start_read(ProcessId(2));
    sim.run_round_robin(10_000);

    let trace = sim.trace();
    println!("recorded MWMR history:\n{}", trace.history);

    // Algorithm 3 produces the linearization on-line; it must be a valid linearization
    // of the history (Definition 2) ...
    let lin = vector_linearization(&trace, None).expect("Algorithm 3 linearizes every run");
    println!("Algorithm 3 linearization: {lin}");
    assert!(lin.is_linearization_of(&trace.history, &0));

    // ... and it must satisfy the write-prefix property over every prefix of the run
    // (Definition 4) — that is Theorem 10.
    let strategy = VectorStrategy::new(trace.clone());
    check_write_strong_prefix_property(&strategy, &trace.history, &0)
        .expect("Theorem 10: Algorithm 2 is write strongly-linearizable");
    println!("write strong-linearizability verified across all prefixes ✔");

    println!();
    println!("== Part 2: the threaded implementation (real concurrency) ==");
    let reg = VectorRegister::new(4);
    let mut handles = Vec::new();
    for t in 0..4usize {
        let r = reg.clone();
        handles.push(thread::spawn(move || {
            for i in 0..3 {
                if t % 2 == 0 {
                    r.write(ProcessId(t), (t * 100 + i) as i64 + 1);
                } else {
                    let _ = r.read(ProcessId(t));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let history = reg.history();
    println!("threaded run recorded {} operations", history.len());
    assert!(
        Checker::new(0i64).check(&history).is_linearizable(),
        "the threaded history must be linearizable"
    );
    println!("threaded history is linearizable ✔");
}
