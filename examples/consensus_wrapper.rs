//! Experiment E3: the Corollary 9 wrapper `A′ = (Algorithm 1 ; consensus)`.
//!
//! The task algorithm `A` (randomized binary consensus) terminates with probability 1 on
//! its own. Prefixing it with Algorithm 1 produces `A′`, whose termination now depends
//! entirely on the strength of the three extra registers: linearizable registers let the
//! strong adversary starve the game forever (so consensus never starts), while write
//! strongly-linearizable registers let the game end and consensus run.
//!
//! Run with: `cargo run --release --example consensus_wrapper`

use rlt_core::consensus::{run_consensus, ConsensusConfig};
use rlt_core::game::run_wrapped;
use rlt_core::sim::RegisterMode;

fn main() {
    let n = 4;
    let inputs = vec![0, 1, 1, 0];

    println!("== The task algorithm A alone (randomized consensus) ==");
    for seed in 0..3 {
        let outcome = run_consensus(&ConsensusConfig::new(n, inputs.clone()), seed);
        println!("  seed {seed}: {outcome}");
        assert!(outcome.all_decided() && outcome.agreement_holds());
    }

    println!();
    println!("== A' with write strongly-linearizable registers (terminates) ==");
    for seed in 0..3 {
        let outcome = run_wrapped(
            RegisterMode::WriteStrongLinearizable,
            n,
            inputs.clone(),
            500,
            seed,
        );
        println!("  seed {seed}: {outcome}");
        assert!(outcome.terminated());
    }

    println!();
    println!("== A' with only-linearizable registers (the adversary starves it) ==");
    for seed in 0..3 {
        let outcome = run_wrapped(RegisterMode::Linearizable, n, inputs.clone(), 60, seed);
        println!("  seed {seed}: {outcome}");
        assert!(!outcome.terminated());
        assert!(outcome.consensus.is_none());
    }
}
