//! Experiment E16: a client round trip against the in-process checking server.
//!
//! Boots `rlt-server` on an ephemeral loopback port and walks the whole HTTP
//! surface from a keep-alive client:
//!
//! 1. `POST /check` — a wire-format history in, a JSON verdict out, pinned
//!    byte-for-byte against the direct `Checker::check` call on the same knobs;
//! 2. `POST /check_many` — a `---`-separated batch, one JSON array back;
//! 3. `POST /linearizations` — the work-capped witness enumeration;
//! 4. a monitoring session: `POST /sessions`, events streamed in two
//!    `POST /sessions/{id}/events` chunks (a pending read completes in the
//!    second), `GET /sessions/{id}/verdict` after each;
//! 5. `GET /metrics?deterministic=1` — the counter subset CI diffs.
//!
//! Every printed line is deterministic (seeded values, counters only), so CI
//! diffs the output across `RLT_THREADS` settings.
//!
//! Run with: `cargo run --release --example check_server`

use httpd::Client;
use rlt_core::server::{serve, AppConfig};
use rlt_core::spec::wire::{parse_history, verdict_to_json};
use rlt_core::spec::Value;

const NEW_OLD_INVERSION: &str = "\
# A new/old inversion: the read overlapping the write returns the new value,
# then a later read returns the stale initial value.
op0 p0 R0 write 1 @ t1..t4
op1 p1 R0 read 1 @ t2..t3
op2 p1 R0 read init @ t5..t6
";

fn main() {
    let handle = serve(AppConfig::default()).expect("bind the checking server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // 1. One-shot check, differentially pinned against the library call.
    let resp = client
        .post("/check", NEW_OLD_INVERSION)
        .expect("POST /check");
    let direct = handle
        .service()
        .build_checker()
        .check(&parse_history(NEW_OLD_INVERSION).expect("wire parse"));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, verdict_to_json(&direct));
    println!("POST /check          -> {} {}", resp.status, resp.body);

    // 2. A batch: the same violating history plus a linearizable one.
    let batch =
        format!("{NEW_OLD_INVERSION}---\nop0 p0 R0 write 2 @ t1..t2\nop1 p1 R0 read 2 @ t3..t4\n");
    let resp = client
        .post("/check_many", &batch)
        .expect("POST /check_many");
    assert_eq!(resp.status, 200);
    println!("POST /check_many     -> {} {}", resp.status, resp.body);

    // 3. Enumerate the linearizations of the linearizable prefix.
    let prefix = "op0 p0 R0 write 1 @ t1..t4\nop1 p1 R0 read 1 @ t2..t3\n";
    let resp = client
        .post("/linearizations?max=4", prefix)
        .expect("POST /linearizations");
    assert_eq!(resp.status, 200);
    println!("POST /linearizations -> {} {}", resp.status, resp.body);

    // 4. A monitoring session fed the same events in two chunks: the verdict
    //    flips from linearizable (read pending) to non-linearizable once the
    //    second read completes with the stale initial value.
    let resp = client.post("/sessions", "").expect("POST /sessions");
    assert_eq!(resp.status, 201);
    println!("POST /sessions       -> {} {}", resp.status, resp.body);
    let id: u64 = resp
        .body
        .trim_start_matches("{\"session\":")
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("session id");
    let chunks = [
        "op0 p0 R0 write 1 @ t1..t4\nop1 p1 R0 read 1 @ t2..t3\nop2 p1 R0 read ? @ t5..\n",
        "op2 p1 R0 read init @ t5..t6\n",
    ];
    for chunk in chunks {
        let resp = client
            .post(&format!("/sessions/{id}/events"), chunk)
            .expect("POST events");
        assert_eq!(resp.status, 200);
        let verdict = client
            .get(&format!("/sessions/{id}/verdict"))
            .expect("GET verdict");
        assert_eq!(verdict.status, 200);
        println!("  events {} -> verdict {}", resp.body, verdict.body);
    }
    // The monitored verdict matches the one-shot check of the full history.
    let monitored = client
        .get(&format!("/sessions/{id}/verdict"))
        .expect("GET verdict");
    assert!(monitored.body.contains("\"decision\":false"));

    // 5. The deterministic counter subset.
    let resp = client
        .get("/metrics?deterministic=1")
        .expect("GET /metrics");
    assert_eq!(resp.status, 200);
    println!("GET /metrics         -> {} {}", resp.status, resp.body);

    // A malformed body comes back as a line-numbered 400, not a dropped socket.
    let resp = client
        .post("/check", "op0 p0 R0 write 1 @ t1..t4\nnot a history line\n")
        .expect("POST /check");
    assert_eq!(resp.status, 400);
    println!("malformed body       -> {} {}", resp.status, resp.body);

    handle.shutdown();
    let _ = Value::Init; // the server's value domain, re-exported for clients
    println!("server drained and shut down");
}
