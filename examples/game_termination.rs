//! Experiments E1 / E2 / E9: Algorithm 1 under the three register semantics.
//!
//! * Theorem 6: with registers that are only linearizable, the Figure 1/2 strong
//!   adversary keeps every process in the game forever.
//! * Theorem 7 / Corollary 8: with write strongly-linearizable (or atomic) registers the
//!   game ends with probability at least 1/2 per round, so it terminates with
//!   probability 1 and the survival curve is geometric.
//!
//! Run with: `cargo run --release --example game_termination`

use rlt_core::game::{compare_modes, expectation_comparison, theorem6_demo, GameConfig};

fn main() {
    let n = 5;

    println!("== Theorem 6: non-termination under merely linearizable registers ==");
    let demo = theorem6_demo(n, 50, 2024);
    println!(
        "after {} rounds, processes still in the game: {} of {}",
        demo.rounds_executed,
        demo.returned_at.iter().filter(|r| r.is_none()).count(),
        n
    );
    println!(
        "every round survived regardless of the coin: {}",
        demo.rounds
            .iter()
            .all(|r| r.players_survived && r.hosts_survived)
    );

    println!();
    println!("== Corollary 8: the same game under all three register modes ==");
    let config = GameConfig::new(n).with_max_rounds(256);
    let trials = 2_000;
    for (_, stats) in compare_modes(&config, trials, 7) {
        println!("{stats}");
    }
    println!();
    println!("== Expected values (Golab et al. motivation, experiment E9) ==");
    let expectation_cfg = GameConfig::new(n).with_max_rounds(64);
    for report in expectation_comparison(&expectation_cfg, 1_000, 11) {
        println!("{report}");
    }

    println!();
    println!(
        "Shape to compare with the paper: linearizable never terminates; write\n\
         strongly-linearizable and atomic terminate with mean round ≈ 2 and the survival\n\
         probability roughly halving every round (Lemma 19)."
    );
}
