//! Experiment E15: live monitoring with an incremental checker session.
//!
//! A batch `Checker::check` re-derives the whole pipeline — interning, precedence
//! bitsets, per-register searches — on every call; an `IncrementalChecker` session
//! keeps all of it alive across a growing history, so the verdict after event N+1
//! resumes the frontier left by event N. This example attaches such a session to two
//! live runs and halts each at the **first non-linearizable prefix**:
//!
//! 1. the faulty (write-back-free) ABD cluster under the reply-withholding delivery
//!    adversary, re-checked after every single delivery — the monitor catches the
//!    new/old inversion the moment the stale read responds;
//! 2. a shared-memory scheduler run over a scripted resolver that feeds a reader a
//!    stale value, through `Scheduler::run_monitored`.
//!
//! Every printed number is deterministic (seeded workload, virtual time, counters),
//! so CI diffs the output across `RLT_THREADS` settings.
//!
//! Run with: `cargo run --release --example live_monitor`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_core::mp::{FaultyAbdCluster, MessageCluster, ReplyWithholdingAdversary, ScheduleRun};
use rlt_core::sim::{
    CoinSource, PendingOp, RegisterMode, RoundRobinAdversary, Scheduler, ScriptedResolver,
    SharedMem, StepOutcome, StepProcess,
};
use rlt_core::spec::{Checker, ProcessId, RegisterId};

/// The hunt workload, inlined: the designated writer writes continuously, one
/// uniformly chosen reader at a time — but unlike `hunt_new_old_inversion` (which
/// rechecks after completed reads), the monitor here is consulted after **every
/// delivery**, the finest granularity the message layer has.
fn monitored_abd_run() {
    let checker = Checker::new(0i64);
    let mut monitor = checker.incremental();
    let mut run = ScheduleRun::new(FaultyAbdCluster::new(5, ProcessId(0)));
    let mut adversary = ReplyWithholdingAdversary::new();
    let mut rng = StdRng::seed_from_u64(0);
    let writer = run.cluster().writer();
    let n = run.cluster().process_count();
    let mut next_value = 7i64;
    let mut active_reader: Option<ProcessId> = None;
    let mut violation_at: Option<u64> = None;
    while run.deliveries() < 3_000 {
        if run.cluster().is_idle(writer) && run.start_write(next_value).is_some() {
            next_value += 1;
        }
        if active_reader.is_none() {
            let r = rng.gen_range(0..n - 1);
            let p = ProcessId(if r >= writer.0 { r + 1 } else { r });
            if run.start_read(p).is_some() {
                active_reader = Some(p);
            }
        }
        if let Some(p) = active_reader {
            if run.cluster().is_idle(p) {
                active_reader = None;
            }
        }
        if !run.deliver_next(&mut adversary) {
            break;
        }
        monitor.sync_with_ops(run.cluster().operations());
        if monitor.verdict_ref().outcome() == Ok(false) {
            violation_at = Some(run.deliveries());
            break;
        }
    }
    let at = violation_at.expect("the reply-withholding adversary forces an inversion");
    let history = run.history();
    let stats = monitor.stats();
    println!("faulty ABD cluster under reply-withholding delivery (n = 5, seed 0):");
    println!("  halted at the first non-linearizable prefix: delivery {at}");
    println!(
        "  history at the halt: {} operations, verdicts served: {}",
        history.len(),
        stats.verdicts
    );
    println!(
        "  session counters: {} events appended, {} completions, \
         {} registers resumed, {} reused verbatim, {} re-searched",
        stats.ops_appended,
        stats.completions,
        stats.registers_resumed,
        stats.registers_reused,
        stats.registers_researched
    );
    println!(
        "  incremental search states: {} ({:.2} per event) vs {} for one batch check",
        stats.incremental_states,
        stats.amortized_states_per_op(),
        checker.check(&history).stats().states_explored
    );
    // The session's final verdict is bit-identical to a batch check — counters too.
    let incremental = monitor.verdict();
    let batch = checker.check(&history);
    assert_eq!(incremental.as_verdict(), &batch);
    assert!(!batch.is_linearizable());
    println!("  bit-identical to the batch verdict: true");
}

/// One process: write 1, then read three times. The scripted resolver hands the
/// second read a stale 0, which the attached monitor catches at that very step.
#[derive(Debug, Default)]
struct StaleReader {
    state: u8,
    pending: Option<PendingOp>,
}

impl StepProcess<i64> for StaleReader {
    fn step(
        &mut self,
        pid: ProcessId,
        mem: &mut SharedMem<i64>,
        _coin: &mut CoinSource,
    ) -> StepOutcome {
        self.state += 1;
        match self.state {
            1 => self.pending = Some(mem.begin_write(pid, RegisterId(0), 1)),
            2 => mem.finish_write(self.pending.take().expect("write pending")),
            3 | 5 | 7 => self.pending = Some(mem.begin_read(pid, RegisterId(0))),
            4 | 6 => {
                mem.finish_read(self.pending.take().expect("read pending"));
            }
            _ => {
                mem.finish_read(self.pending.take().expect("read pending"));
                return StepOutcome::Done;
            }
        }
        StepOutcome::Running
    }
}

fn monitored_scheduler_run() {
    let mem: SharedMem<i64> = SharedMem::with_resolver(
        RegisterMode::Linearizable,
        0,
        Box::new(ScriptedResolver::strict(vec![1i64, 0i64, 0i64])),
    );
    let mut sched = Scheduler::new(
        mem,
        CoinSource::new(7),
        Box::new(RoundRobinAdversary::new()),
    );
    sched.add_process(ProcessId(0), Box::<StaleReader>::default());
    let checker = Checker::new(0i64);
    let mut monitor = checker.incremental();
    let out = sched.run_monitored(10_000, &mut monitor);
    let at = out
        .violation_at_step
        .expect("the scripted stale read must be caught");
    println!();
    println!("shared-memory scheduler with a scripted stale read:");
    println!(
        "  halted at step {at} ({} of a possible 8 steps run), history: {} operations",
        out.outcome.steps,
        sched.history().len()
    );
    assert!(!out.outcome.all_done, "the third read must never run");
    assert_eq!(monitor.history(), &sched.history());
    assert!(!checker.check(&sched.history()).is_linearizable());
    println!("  monitor and batch checker agree the prefix is non-linearizable: true");
}

fn main() {
    monitored_abd_run();
    monitored_scheduler_run();
}
