//! Experiment E17: coverage-guided schedule fuzzing, end to end.
//!
//! The E13 adversaries know *exactly* which replies to withhold; the fuzzer knows
//! nothing. It starts from clean recorded schedules of the faulty (write-back-free)
//! ABD cluster, mutates delivery and fault steps, keeps mutants that discover novel
//! coverage (checker memo-state sketch ∪ schedule-shape digests), and still lands on
//! the same new/old inversion. This example:
//!
//! 1. records a clean corpus and shows that replaying it verbatim finds nothing,
//! 2. runs the coverage-guided hunt until the first confirmed trophy,
//! 3. prints the ddmin-minimized counterexample schedule and re-verifies that it
//!    replays bit-identically to a still-rejected history,
//! 4. replays the same minimized schedule on the *correct* cluster — harmless, the
//!    write-back is exactly what the trophy exploits.
//!
//! Every printed line is deterministic (seed-pure, pool-width independent).
//!
//! Run with: `cargo run --release --example schedule_fuzz`

use rlt_core::mp::fuzz::{fuzz_faulty_rediscovery, FuzzConfig};
use rlt_core::mp::{AbdCluster, FaultyAbdCluster};
use rlt_core::spec::{Checker, ProcessId};

fn main() {
    let checker = Checker::new(0i64);
    let config = FuzzConfig::default();
    let scenario_seed = 1u64;

    // 1 + 2. Seed replays are clean (generation 0 yields no trophies — the fuzzer
    // would have reported them); the breeding generations find the inversion.
    let report = fuzz_faulty_rediscovery(scenario_seed, &config);
    println!(
        "fuzz: {} mutants over {} generations, {} budget units, coverage {} units",
        report.mutants_executed, report.generations_run, report.budget_used, report.coverage_units
    );
    let trophy = report
        .trophies
        .first()
        .expect("the rediscovery hunt must land a trophy on seed 1");
    println!(
        "trophy: generation {}, ddmin {} -> {} deliveries in {} replays",
        trophy.generation,
        trophy.schedule.delivery_count(),
        trophy.min_deliveries,
        trophy.ddmin_replays
    );

    // 3. Bit-identical replay, still rejected.
    let fresh = || FaultyAbdCluster::new(5, ProcessId(0));
    let (mut a, mut b) = (fresh(), fresh());
    trophy.minimized.replay_on(&mut a);
    trophy.minimized.replay_on(&mut b);
    assert_eq!(a.history(), b.history(), "replay must be deterministic");
    assert!(
        !checker.check(&a.history()).is_linearizable(),
        "the minimized trophy must stay non-linearizable"
    );
    println!("minimized schedule (replays bit-identically, checker rejects):");
    for line in trophy.minimized.to_string().lines() {
        println!("  {line}");
    }

    // 4. The correct cluster shrugs it off.
    let mut correct = AbdCluster::new(5, ProcessId(0));
    trophy.minimized.replay_on(&mut correct);
    assert!(
        checker.check(&correct.history()).is_linearizable(),
        "the write-back must defuse the trophy"
    );
    println!("same schedule on the correct cluster: linearizable (write-back defuses it)");
}
