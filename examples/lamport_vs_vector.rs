//! Experiments E4 / E5 / E6: Lamport clocks vs vector timestamps.
//!
//! Both Algorithm 2 (vector timestamps) and Algorithm 4 (Lamport clocks) implement a
//! linearizable MWMR register from SWMR registers, but only Algorithm 2 is write
//! strongly-linearizable. This example:
//!
//! 1. drives both constructions through the same random schedules and confirms every
//!    recorded history is linearizable (Theorems 10 and 12);
//! 2. verifies Algorithm 3's write-prefix property across all prefixes of Algorithm 2
//!    runs (Theorem 10);
//! 3. replays the exact Figure 4 executions and shows that no write
//!    strong-linearization function can exist for Algorithm 4 (Theorem 13).
//!
//! Run with: `cargo run --example lamport_vs_vector`

use rlt_core::registers::algorithm2::VectorSim;
use rlt_core::registers::algorithm3::VectorStrategy;
use rlt_core::registers::algorithm4::LamportSim;
use rlt_core::registers::counterexample::theorem13_family;
use rlt_core::registers::schedule::{random_run, WorkloadParams};
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::Checker;

fn main() {
    let schedules = 20u64;
    let params = WorkloadParams {
        decisions: 50,
        write_fraction: 0.5,
    };

    println!("== Theorems 10 & 12: both constructions are linearizable ==");
    let mut alg2_ok = 0;
    let mut alg2_wsl_ok = 0;
    let mut alg4_ok = 0;
    // One checking session for the whole sweep (reuses search scratch across seeds).
    let checker = Checker::new(0i64);
    for seed in 0..schedules {
        let mut v = VectorSim::new(3);
        random_run(&mut v, seed, params);
        let trace = v.trace();
        if checker.check(&trace.history).is_linearizable() {
            alg2_ok += 1;
        }
        if check_write_strong_prefix_property(
            &VectorStrategy::new(trace.clone()),
            &trace.history,
            &0,
        )
        .is_ok()
        {
            alg2_wsl_ok += 1;
        }

        let mut l = LamportSim::new(3);
        random_run(&mut l, seed, params);
        if checker.check(&l.history()).is_linearizable() {
            alg4_ok += 1;
        }
    }
    println!("  Algorithm 2 (vector ts): linearizable histories        {alg2_ok}/{schedules}");
    println!("  Algorithm 2 (vector ts): write-strong prefix property  {alg2_wsl_ok}/{schedules}");
    println!("  Algorithm 4 (Lamport):   linearizable histories        {alg4_ok}/{schedules}");
    assert_eq!(alg2_ok, schedules);
    assert_eq!(alg2_wsl_ok, schedules);
    assert_eq!(alg4_ok, schedules);

    println!();
    println!("== Theorem 13 / Figure 4: Algorithm 4 is not write strongly-linearizable ==");
    let outcome = theorem13_family();
    println!("  case 1 read returned {}", outcome.case1_read_value);
    println!("  case 2 read returned {}", outcome.case2_read_value);
    println!(
        "  linearizations of the common prefix G examined: {}",
        outcome.report.base_linearizations.len()
    );
    println!("{}", outcome.report);
    assert!(outcome.demonstrates_impossibility());
    println!(
        "No linearization of G extends to both continuations with a consistent write\n\
         order — exactly the Theorem 13 impossibility."
    );
}
