//! Experiment E14: the fault matrix — scenario × cluster × verdict.
//!
//! Runs both ABD clusters (the correct one with its read write-back, the faulty one
//! without) through the same deterministic fault scenarios: clean network, 20% loss,
//! a partition window over the writer's side, a crash-with-recovery, and the full
//! lossy-partition gauntlet. Every cell reports the checker's verdict plus the fault
//! log of the run — drops, duplicates, delays, partition holds, purges, dead sends,
//! timer fires, and retransmissions are all counted, never silent.
//!
//! The correct cluster (with timeout-driven retries) stays linearizable in every row;
//! the faulty cluster survives only until a scenario lets the missing write-back
//! matter. All runs are seeded: the table is bit-identical across invocations.
//!
//! Run with: `cargo run --example fault_matrix`

use rlt_core::mp::adversary::ReplyWithholdingAdversary;
use rlt_core::mp::{
    hunt_with_faults, AbdCluster, FaultPlan, FaultScenario, FaultyAbdCluster, MessageCluster,
    Partition, RetryPolicy, UniformAdversary,
};
use rlt_core::spec::{Checker, ProcessId};

const N: usize = 5;
const WRITER: ProcessId = ProcessId(0);
const SEEDS: u64 = 8;
const MAX_DELIVERIES: u64 = 400;

fn scenarios() -> Vec<(&'static str, FaultScenario)> {
    let writer_cut = || Partition::new(1, "writer-side-cut", [ProcessId(0), ProcessId(1)]);
    vec![
        ("clean", FaultScenario::new(FaultPlan::clean(), 0xc1ea)),
        (
            "lossy p=0.2",
            FaultScenario::new(FaultPlan::lossy(0.2), 0x105e),
        ),
        (
            "partition+heal",
            FaultScenario::new(FaultPlan::clean(), 0xbeef).with_partition_window(
                6,
                12,
                writer_cut(),
            ),
        ),
        (
            "crash+recover",
            FaultScenario::new(FaultPlan::clean(), 0xdead)
                .with_crash(10, ProcessId(4))
                .with_recovery(30, ProcessId(4)),
        ),
        (
            "lossy+partition",
            FaultScenario::new(FaultPlan::lossy(0.2), 0xfa01).with_partition_window(
                6,
                12,
                writer_cut(),
            ),
        ),
    ]
}

struct Cell {
    rejected: u64,
    first_violation: Option<u64>,
    drops: u64,
    dups: u64,
    delays: u64,
    holds: u64,
    retransmissions: u64,
}

fn run_cell<C, F>(fresh: F, scenario: &FaultScenario, targeted: bool) -> Cell
where
    C: MessageCluster,
    F: Fn() -> C,
{
    let checker = Checker::new(0i64);
    let mut cell = Cell {
        rejected: 0,
        first_violation: None,
        drops: 0,
        dups: 0,
        delays: 0,
        holds: 0,
        retransmissions: 0,
    };
    for seed in 0..SEEDS {
        let report = if targeted {
            let mut adversary = ReplyWithholdingAdversary::new();
            hunt_with_faults(
                fresh(),
                &mut adversary,
                scenario,
                seed,
                MAX_DELIVERIES,
                &checker,
            )
        } else {
            let mut adversary = UniformAdversary::new(seed ^ 0xabd);
            hunt_with_faults(
                fresh(),
                &mut adversary,
                scenario,
                seed,
                MAX_DELIVERIES,
                &checker,
            )
        };
        if let Some(at) = report.violation_at {
            cell.rejected += 1;
            let best = cell.first_violation.map_or(at, |b| b.min(at));
            cell.first_violation = Some(best);
        }
        let log = report.fault_log;
        cell.drops += log.drops;
        cell.dups += log.duplicates;
        cell.delays += log.delays;
        cell.holds += log.partition_holds;
        cell.retransmissions += log.retransmissions;
    }
    cell
}

fn verdict(cell: &Cell) -> String {
    match cell.first_violation {
        None => format!("linearizable ({SEEDS}/{SEEDS} seeds)"),
        Some(at) => format!(
            "REJECTED {}/{} seeds (first at {at} deliveries)",
            cell.rejected, SEEDS
        ),
    }
}

fn main() {
    let retry = RetryPolicy::default();
    println!("E14 fault matrix: n = {N}, {SEEDS} seeds/cell, cap {MAX_DELIVERIES} deliveries");
    println!("cluster rows: correct = ABD with write-back, faulty = write-back elided");
    println!(
        "both clusters retry with backoff base {} cap {}",
        retry.base, retry.cap
    );
    println!();
    println!(
        "{:<16} {:<8} {:<44} {:>6} {:>5} {:>6} {:>6} {:>7}",
        "scenario", "cluster", "verdict", "drops", "dups", "delays", "holds", "retrans"
    );
    for (name, scenario) in scenarios() {
        let correct = run_cell(
            || AbdCluster::new(N, WRITER).with_retries(retry),
            &scenario,
            false,
        );
        let faulty = run_cell(
            || FaultyAbdCluster::new(N, WRITER).with_retries(retry),
            &scenario,
            true,
        );
        for (cluster, cell) in [("correct", &correct), ("faulty", &faulty)] {
            println!(
                "{:<16} {:<8} {:<44} {:>6} {:>5} {:>6} {:>6} {:>7}",
                name,
                cluster,
                verdict(cell),
                cell.drops,
                cell.dups,
                cell.delays,
                cell.holds,
                cell.retransmissions
            );
        }
        assert!(
            correct.first_violation.is_none(),
            "the correct cluster must survive scenario {name}"
        );
    }
    println!();
    println!("every correct-cluster row is linearizable: Theorem 14 survives the fault layer.");
}
