//! Experiment E13: adversarial message schedules with seeded minimization.
//!
//! Uniform random delivery has to get lucky to catch the faulty (write-back-free) ABD
//! cluster misbehaving; a targeted delivery adversary *forces* the new/old inversion
//! in a couple dozen deliveries. This example:
//!
//! 1. hunts for a checker-rejected history under uniform delivery and under the
//!    reply-withholding adversary, comparing deliveries-to-counterexample,
//! 2. shrinks the recorded failing schedule with the seeded delta-debugging
//!    minimizer,
//! 3. replays the shrunk schedule — twice on the faulty cluster (bit-identical, still
//!    rejected) and once on the *correct* cluster (harmless, Theorem 14's point).
//!
//! Run with: `cargo run --example abd_adversary`

use rlt_core::mp::adversary::hunt_new_old_inversion;
use rlt_core::mp::minimize::minimize_schedule;
use rlt_core::mp::{AbdCluster, FaultyAbdCluster, ReplyWithholdingAdversary, UniformAdversary};
use rlt_core::spec::{Checker, ProcessId};

fn main() {
    let checker = Checker::new(0i64);
    let fresh = || FaultyAbdCluster::new(5, ProcessId(0));
    let cap = 3_000u64;
    let seeds = 10u64;

    // 1. Deliveries until the checker rejects a history, per adversary.
    let mut uniform_outcomes = Vec::new();
    for seed in 0..seeds {
        let mut adversary = UniformAdversary::new(seed ^ 0x5eed);
        let report = hunt_new_old_inversion(fresh(), &mut adversary, seed, cap, &checker);
        uniform_outcomes.push(report.violation_at);
    }
    let mut adversary = ReplyWithholdingAdversary::new();
    let targeted = hunt_new_old_inversion(fresh(), &mut adversary, 0, cap, &checker);
    let targeted_at = targeted
        .violation_at
        .expect("the targeted adversary always finds the inversion");

    let found = uniform_outcomes.iter().filter(|o| o.is_some()).count();
    println!("deliveries to a checker-rejected history (faulty ABD, n = 5):");
    println!(
        "  uniform random:    found {found}/{seeds} within {cap} deliveries: {:?}",
        uniform_outcomes
            .iter()
            .map(|o| o.map_or("cap".to_string(), |d| d.to_string()))
            .collect::<Vec<_>>()
    );
    println!("  reply withholding: found every time, {targeted_at} deliveries");
    println!();

    // 2. Shrink the failing schedule while "not linearizable" keeps holding.
    let not_linearizable =
        |h: &rlt_core::spec::History<i64>| matches!(checker.check(h).outcome(), Ok(false));
    let minimized = minimize_schedule(fresh, &targeted.schedule, not_linearizable, 0);
    println!(
        "minimized: {} steps / {} deliveries  ->  {} steps / {} deliveries ({} replays)",
        targeted.schedule.len(),
        targeted.schedule.delivery_count(),
        minimized.schedule.len(),
        minimized.schedule.delivery_count(),
        minimized.replays_tried,
    );
    // The stable textual form (Display) round-trips through parse.
    for step in &minimized.schedule.steps {
        println!("    {step}");
    }
    let round_tripped: rlt_core::mp::Schedule = minimized
        .schedule
        .to_string()
        .parse()
        .expect("schedule text round-trips");
    assert_eq!(round_tripped, minimized.schedule);
    println!();

    // 3. Replay: deterministic on the faulty cluster, harmless on the correct one.
    let (mut a, mut b) = (fresh(), fresh());
    minimized.schedule.replay_on(&mut a);
    minimized.schedule.replay_on(&mut b);
    assert_eq!(a.history(), b.history(), "replay must be bit-identical");
    assert!(not_linearizable(&a.history()), "still a counterexample");
    println!("replayed twice on the faulty cluster: bit-identical, still rejected");

    let mut correct = AbdCluster::new(5, ProcessId(0));
    minimized.schedule.replay_on(&mut correct);
    assert!(checker.check(&correct.history()).is_linearizable());
    println!("replayed on the correct cluster:      linearizable (the write-back saves it)");
    assert!(
        targeted_at * 10 <= cap,
        "sanity: the targeted hunt is cheap"
    );
}
