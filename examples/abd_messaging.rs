//! Experiment E8: ABD in an asynchronous message-passing system (Theorem 14).
//!
//! The ABD implementation of a SWMR register is linearizable and — by Theorem 14, like
//! every linearizable SWMR implementation — write strongly-linearizable. This example
//! drives an ABD cluster through adversarial message schedules and crash failures, then
//! verifies both properties on the recorded histories.
//!
//! Run with: `cargo run --example abd_messaging`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlt_core::mp::{AbdCluster, MessageCluster};
use rlt_core::spec::strategy::check_write_strong_prefix_property;
use rlt_core::spec::swmr::canonical_swmr_strategy;
use rlt_core::spec::{Checker, ProcessId};

fn main() {
    let n = 5;
    let writer = ProcessId(0);
    let schedules = 25u64;
    let mut linearizable = 0;
    let mut write_strong = 0;

    // One checking session for the whole sweep (reuses search scratch across seeds).
    let checker = Checker::new(0i64);
    for seed in 0..schedules {
        let mut cluster = AbdCluster::new(n, writer);
        let mut rng = StdRng::seed_from_u64(seed);

        // Crash one (minority) process in half the schedules.
        if seed % 2 == 0 {
            cluster.crash(ProcessId(4));
        }

        let mut next_value = 1i64;
        for phase in 0..5 {
            if cluster.is_idle(writer) && phase % 2 == 0 {
                cluster.start_write(next_value);
                next_value += 1;
            }
            for reader in [1usize, 2, 3] {
                if cluster.is_idle(ProcessId(reader)) && rng.gen_bool(0.6) {
                    cluster.start_read(ProcessId(reader));
                }
            }
            // Adversarial partial delivery: only a few messages land before the next
            // operations start.
            for _ in 0..rng.gen_range(4..15) {
                cluster.deliver_random(&mut rng);
            }
        }
        cluster.run_to_quiescence(&mut rng, 100_000);

        let history = cluster.history();
        if checker.check(&history).is_linearizable() {
            linearizable += 1;
        }
        let strategy = canonical_swmr_strategy(0i64);
        if check_write_strong_prefix_property(&strategy, &history, &0).is_ok() {
            write_strong += 1;
        }
    }

    println!("ABD over {n} processes, {schedules} adversarial schedules (half with a crash):");
    println!("  histories linearizable:              {linearizable}/{schedules}");
    println!("  write strong-prefix property holds:  {write_strong}/{schedules}");
    println!();
    println!(
        "Theorem 14: every linearizable SWMR register implementation is write\n\
         strongly-linearizable — both counters above must equal the number of schedules."
    );
    assert_eq!(linearizable, schedules);
    assert_eq!(write_strong, schedules);
}
